//! Composition of software and hardware re-mapping into one address map.

use nvpim_array::AddressMap;

use crate::{BalanceConfig, HwRemapper, RemapSchedule, StrategyMapper};

/// The full logical→physical translation of one balancing configuration.
///
/// Translation composes in two stages, mirroring the paper's architecture:
/// the *software* stage (set at compile/re-compile time) maps logical rows
/// and lanes through [`StrategyMapper`]s; the *hardware* stage (if `Hw` is
/// enabled) renames the software-produced row through the free-row
/// [`HwRemapper`] on every all-lane gate.
///
/// When `Hw` is enabled one physical row is reserved as the spare, so the
/// software row space shrinks by one — [`CombinedMap::logical_rows`] reports
/// the space available to layouts.
///
/// # Examples
///
/// ```
/// use nvpim_array::AddressMap;
/// use nvpim_balance::{BalanceConfig, CombinedMap, RemapSchedule};
///
/// let config: BalanceConfig = "BsxSt".parse().unwrap();
/// let mut map = CombinedMap::new(config, 64, 16, 7);
/// assert_eq!(map.lookup_row(0), 0);
/// map.advance_epoch();
/// assert_eq!(map.lookup_row(0), 8); // byte-shifted rows
/// assert_eq!(map.lookup_lane(3), 3); // static lanes
/// # let _ = RemapSchedule::never();
/// ```
#[derive(Debug, Clone)]
pub struct CombinedMap {
    config: BalanceConfig,
    rows: StrategyMapper,
    lanes: StrategyMapper,
    hw: Option<HwRemapper>,
}

impl CombinedMap {
    /// Builds the map for an array with `physical_rows × lanes` cells.
    ///
    /// # Panics
    ///
    /// Panics if `physical_rows < 2` with `Hw` enabled, or if either
    /// dimension is zero.
    #[must_use]
    pub fn new(config: BalanceConfig, physical_rows: usize, lanes: usize, seed: u64) -> Self {
        let hw = config.hw.then(|| HwRemapper::new(physical_rows));
        let row_space = if config.hw { physical_rows - 1 } else { physical_rows };
        CombinedMap {
            config,
            // Derive distinct streams for the two mappers from one seed.
            rows: StrategyMapper::new(config.row, row_space, seed.wrapping_mul(2).wrapping_add(1)),
            lanes: StrategyMapper::new(config.col, lanes, seed.wrapping_mul(2)),
            hw,
        }
    }

    /// The configuration in effect.
    #[must_use]
    pub fn config(&self) -> BalanceConfig {
        self.config
    }

    /// Rows available to logical layouts (one less than physical when `Hw`
    /// reserves the spare row).
    #[must_use]
    pub fn logical_rows(&self) -> usize {
        self.rows.len()
    }

    /// Applies one software re-mapping event (re-compilation) to both the
    /// row and lane mappers.
    pub fn advance_epoch(&mut self) {
        self.rows.advance_epoch();
        self.lanes.advance_epoch();
    }

    /// The current lane permutation (logical lane → physical lane).
    #[must_use]
    pub fn lane_permutation(&self) -> &[usize] {
        self.lanes.as_slice()
    }

    /// The flat logical→physical row translation table for the current
    /// software epoch — the simulator's replay hot path scatters through
    /// this precomputed slice instead of re-translating every step through
    /// [`AddressMap::lookup_row`]'s trait call and `Hw` branch.
    ///
    /// The table is cached per epoch: it is the row mapper's forward
    /// permutation, rewritten in place by [`CombinedMap::advance_epoch`].
    /// **Invariant:** a borrow of this table must never be held across an
    /// epoch advance — the rewrite is the invalidation (see DESIGN.md,
    /// "Epoch translation cache"). The borrow checker enforces this:
    /// `advance_epoch` takes `&mut self`, so a live `&[usize]` from here
    /// makes the advance a compile error.
    ///
    /// # Panics
    ///
    /// Panics if `Hw` is enabled: a dynamic map changes on every all-lane
    /// gate, so no per-epoch table exists for it.
    #[must_use]
    pub fn row_table(&self) -> &[usize] {
        assert!(
            !self.is_dynamic(),
            "row_table is only defined for static-within-epoch maps (Hw is enabled)"
        );
        self.rows.as_slice()
    }

    /// The software half of the row translation for the current epoch, as a
    /// flat logical→physical-row-space table — defined for *every*
    /// configuration, unlike [`CombinedMap::row_table`]. For static maps the
    /// two agree; for dynamic (`+Hw`) maps this is the table the hardware
    /// stage composes on top of, which is exactly what the compiled-kernel
    /// path needs: it translates the trace through this table once per
    /// software epoch and handles the hardware stage algebraically.
    ///
    /// Same borrow-based invalidation as [`CombinedMap::row_table`]: the
    /// slice is rewritten in place by [`CombinedMap::advance_epoch`].
    #[must_use]
    pub fn sw_row_table(&self) -> &[usize] {
        self.rows.as_slice()
    }

    /// Whether this map ever changes state during execution (i.e. `Hw` is
    /// on). Static-during-epoch maps allow the simulator's fast path.
    #[must_use]
    pub fn is_dynamic(&self) -> bool {
        self.hw.is_some()
    }

    /// Software re-mapping epochs applied so far.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.rows.epoch()
    }

    /// Hardware redirects performed so far (0 when `Hw` is off).
    #[must_use]
    pub fn hw_redirects(&self) -> u64 {
        self.hw.as_ref().map_or(0, HwRemapper::redirects)
    }

    /// Direct access to the hardware remapper, if enabled.
    #[must_use]
    pub fn hw(&self) -> Option<&HwRemapper> {
        self.hw.as_ref()
    }

    /// Mutable access to the hardware remapper, if enabled — the
    /// compiled-kernel path advances the renaming state through
    /// [`HwRemapper::set_arrangement`] after folding an epoch.
    pub fn hw_mut(&mut self) -> Option<&mut HwRemapper> {
        self.hw.as_mut()
    }
}

impl AddressMap for CombinedMap {
    fn lookup_row(&self, logical: usize) -> usize {
        let sw = self.rows.lookup(logical);
        match &self.hw {
            Some(hw) => hw.lookup(sw),
            None => sw,
        }
    }

    fn lookup_lane(&self, logical: usize) -> usize {
        self.lanes.lookup(logical)
    }

    fn gate_output_row(&mut self, logical: usize, all_lanes: bool) -> usize {
        let sw = self.rows.lookup(logical);
        match &mut self.hw {
            // §4: hardware re-mapping fires on every gate that uses all
            // lanes; other gates write through the current mapping.
            Some(hw) if all_lanes => hw.redirect(sw),
            Some(hw) => hw.lookup(sw),
            None => sw,
        }
    }
}

/// Convenience bundle tying a map to its re-mapping schedule, advancing
/// epochs as iterations complete.
///
/// # Examples
///
/// ```
/// use nvpim_balance::{BalanceConfig, CombinedMap, RemapSchedule, ScheduledMap};
///
/// let map = CombinedMap::new("RaxRa".parse().unwrap(), 32, 8, 1);
/// let mut scheduled = ScheduledMap::new(map, RemapSchedule::every(100));
/// assert!(!scheduled.finish_iteration(98)); // iterations 0..99: epoch 0
/// assert!(scheduled.finish_iteration(99));  // epoch boundary after #99
/// ```
#[derive(Debug, Clone)]
pub struct ScheduledMap {
    map: CombinedMap,
    schedule: RemapSchedule,
}

impl ScheduledMap {
    /// Couples a map with a schedule.
    #[must_use]
    pub fn new(map: CombinedMap, schedule: RemapSchedule) -> Self {
        ScheduledMap { map, schedule }
    }

    /// The underlying map.
    #[must_use]
    pub fn map(&self) -> &CombinedMap {
        &self.map
    }

    /// Mutable access to the underlying map (for execution).
    pub fn map_mut(&mut self) -> &mut CombinedMap {
        &mut self.map
    }

    /// The schedule.
    #[must_use]
    pub fn schedule(&self) -> RemapSchedule {
        self.schedule
    }

    /// Records that iteration `iteration` (0-based) completed; advances the
    /// software epoch if the schedule calls for it and reports whether it
    /// did.
    pub fn finish_iteration(&mut self, iteration: u64) -> bool {
        if self.schedule.remaps_after(iteration) {
            self.map.advance_epoch();
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvpim_array::AddressMap;

    fn physical_rows_cover(map: &mut CombinedMap, logical_rows: usize, physical_rows: usize) {
        let mut seen = vec![false; physical_rows];
        for l in 0..logical_rows {
            let p = map.lookup_row(l);
            assert!(!seen[p], "row collision at {p}");
            seen[p] = true;
        }
    }

    #[test]
    fn static_config_is_identity() {
        let mut m = CombinedMap::new(BalanceConfig::baseline(), 16, 8, 0);
        for r in 0..16 {
            assert_eq!(m.lookup_row(r), r);
            assert_eq!(m.gate_output_row(r, true), r);
        }
        for l in 0..8 {
            assert_eq!(m.lookup_lane(l), l);
        }
        assert!(!m.is_dynamic());
        assert_eq!(m.logical_rows(), 16);
    }

    #[test]
    fn hw_reserves_a_row() {
        let m = CombinedMap::new("StxSt+Hw".parse().unwrap(), 16, 8, 0);
        assert_eq!(m.logical_rows(), 15);
        assert!(m.is_dynamic());
    }

    #[test]
    fn hw_redirect_only_on_all_lane_gates() {
        let mut m = CombinedMap::new("StxSt+Hw".parse().unwrap(), 8, 4, 0);
        let before = m.lookup_row(2);
        assert_eq!(m.gate_output_row(2, false), before, "partial gates don't remap");
        assert_eq!(m.lookup_row(2), before);
        let redirected = m.gate_output_row(2, true);
        assert_ne!(redirected, before, "all-lane gates redirect");
        assert_eq!(m.lookup_row(2), redirected, "mapping follows the redirect");
    }

    #[test]
    fn composition_stays_injective_under_stress() {
        let mut m = CombinedMap::new("RaxRa+Hw".parse().unwrap(), 33, 16, 3);
        for epoch in 0..5 {
            for i in 0..200 {
                let _ = m.gate_output_row((i * 7 + epoch) % 32, i % 3 != 0);
            }
            physical_rows_cover(&mut m, 32, 33);
            m.advance_epoch();
        }
    }

    #[test]
    fn row_table_matches_lookup_at_every_epoch() {
        for config in ["StxSt", "RaxSt", "BsxRa"] {
            let mut m = CombinedMap::new(config.parse().unwrap(), 48, 8, 11);
            for _ in 0..4 {
                let table = m.row_table().to_vec();
                for (logical, &physical) in table.iter().enumerate() {
                    assert_eq!(m.lookup_row(logical), physical, "{config}");
                }
                m.advance_epoch();
            }
        }
    }

    #[test]
    fn row_table_is_invalidated_by_advance_epoch() {
        let mut m = CombinedMap::new("BsxSt".parse().unwrap(), 32, 4, 0);
        let before = m.row_table().to_vec();
        m.advance_epoch();
        let after = m.row_table().to_vec();
        assert_ne!(before, after, "epoch advance must rewrite the table");
        assert_eq!(after[0], 8, "byte-shift moves logical 0 to physical 8");
    }

    #[test]
    #[should_panic(expected = "static-within-epoch")]
    fn row_table_rejects_dynamic_maps() {
        let m = CombinedMap::new("StxSt+Hw".parse().unwrap(), 16, 4, 0);
        let _ = m.row_table();
    }

    #[test]
    fn sw_row_table_is_defined_for_dynamic_maps() {
        // The software half exists regardless of Hw; with Hw fresh (identity
        // arrangement) the composed lookup equals the software table.
        let mut m = CombinedMap::new("RaxSt+Hw".parse().unwrap(), 17, 4, 3);
        for epoch in 0..3 {
            let table = m.sw_row_table().to_vec();
            assert_eq!(table.len(), 16, "Hw reserves the spare row");
            for (logical, &sw) in table.iter().enumerate() {
                let hw = m.hw().unwrap();
                assert_eq!(m.lookup_row(logical), hw.lookup(sw), "epoch {epoch}");
            }
            m.advance_epoch();
        }
        // For static maps the two tables are the same slice of data.
        let s = CombinedMap::new("BsxSt".parse().unwrap(), 16, 4, 0);
        assert_eq!(s.sw_row_table(), s.row_table());
    }

    #[test]
    fn hw_mut_exposes_the_live_remapper() {
        let mut m = CombinedMap::new("StxSt+Hw".parse().unwrap(), 8, 4, 0);
        let arr = m.hw().unwrap().arrangement();
        m.hw_mut()
            .unwrap()
            .set_arrangement(&[arr[7], arr[1], arr[2], arr[3], arr[4], arr[5], arr[6], arr[0]]);
        m.hw_mut().unwrap().add_redirects(9);
        assert_eq!(m.lookup_row(0), 7, "mutations flow through the composed lookup");
        assert_eq!(m.hw_redirects(), 9);
        assert!(CombinedMap::new("StxSt".parse().unwrap(), 8, 4, 0).hw().is_none());
    }

    #[test]
    fn random_rows_remap_on_epoch() {
        let mut m = CombinedMap::new("RaxSt".parse().unwrap(), 64, 4, 9);
        let before: Vec<usize> = (0..64).map(|r| m.lookup_row(r)).collect();
        m.advance_epoch();
        let after: Vec<usize> = (0..64).map(|r| m.lookup_row(r)).collect();
        assert_ne!(before, after);
        physical_rows_cover(&mut m, 64, 64);
    }

    #[test]
    fn lane_and_row_streams_are_independent() {
        let m = CombinedMap::new("RaxRa".parse().unwrap(), 32, 32, 5);
        let mut m2 = m.clone();
        m2.advance_epoch();
        // After one epoch both mappers changed, and they are not the same
        // permutation of each other (different derived seeds).
        let rows: Vec<usize> = (0..32).map(|r| m2.lookup_row(r)).collect();
        let lanes: Vec<usize> = (0..32).map(|l| m2.lookup_lane(l)).collect();
        assert_ne!(rows, lanes);
    }

    #[test]
    fn scheduled_map_advances_on_boundaries() {
        let map = CombinedMap::new("BsxSt".parse().unwrap(), 32, 4, 0);
        let mut s = ScheduledMap::new(map, RemapSchedule::every(10));
        let mut epochs = 0;
        for it in 0..100 {
            if s.finish_iteration(it) {
                epochs += 1;
            }
        }
        assert_eq!(epochs, 10);
        assert_eq!(s.map().lookup_row(0), (10 * 8) % 32);
    }

    #[test]
    fn never_schedule_keeps_epoch_zero() {
        let map = CombinedMap::new("RaxRa".parse().unwrap(), 32, 4, 0);
        let mut s = ScheduledMap::new(map, RemapSchedule::never());
        for it in 0..1000 {
            assert!(!s.finish_iteration(it));
        }
        assert_eq!(s.map().lookup_row(5), 5);
    }
}
