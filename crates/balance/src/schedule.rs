//! Re-mapping (re-compilation) schedules.
//!
//! Software re-mapping requires re-compiling the program (§3.2), which
//! cannot happen arbitrarily often; §5 sweeps the period over
//! {10 000, 1 000, 500, 100, 50, 10} iterations and finds lifetime saturates
//! around every 50 iterations.

use std::fmt;

/// How often software re-mapping occurs, in completed iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RemapSchedule {
    period: Option<u64>,
}

impl RemapSchedule {
    /// The paper's §5 sweep of re-compilation periods.
    pub const PAPER_SWEEP: [u64; 6] = [10_000, 1_000, 500, 100, 50, 10];

    /// Re-map after every `period` iterations.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    #[must_use]
    pub fn every(period: u64) -> Self {
        assert!(period > 0, "re-map period must be positive");
        RemapSchedule { period: Some(period) }
    }

    /// Never re-map (the schedule of `St × St`, or of a program that is
    /// never re-compiled).
    #[must_use]
    pub fn never() -> Self {
        RemapSchedule { period: None }
    }

    /// The period, if any.
    #[must_use]
    pub fn period(&self) -> Option<u64> {
        self.period
    }

    /// Whether a re-map event fires after 0-based iteration `iteration`
    /// completes.
    #[must_use]
    pub fn remaps_after(&self, iteration: u64) -> bool {
        match self.period {
            Some(p) => (iteration + 1) % p == 0,
            None => false,
        }
    }

    /// Number of re-map events over `iterations` completed iterations.
    #[must_use]
    pub fn events_in(&self, iterations: u64) -> u64 {
        match self.period {
            Some(p) => iterations / p,
            None => 0,
        }
    }
}

impl Default for RemapSchedule {
    /// The paper's Figs. 14–16 setting: re-compilation every 100 iterations.
    fn default() -> Self {
        RemapSchedule::every(100)
    }
}

impl fmt::Display for RemapSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.period {
            Some(p) => write!(f, "every {p} iterations"),
            None => f.write_str("never"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_fire_exactly_on_period() {
        let s = RemapSchedule::every(3);
        let fired: Vec<bool> = (0..9).map(|i| s.remaps_after(i)).collect();
        assert_eq!(fired, vec![false, false, true, false, false, true, false, false, true]);
        assert_eq!(s.events_in(9), 3);
        assert_eq!(s.events_in(8), 2);
    }

    #[test]
    fn never_never_fires() {
        let s = RemapSchedule::never();
        assert!((0..1000).all(|i| !s.remaps_after(i)));
        assert_eq!(s.events_in(1000), 0);
        assert_eq!(s.period(), None);
    }

    #[test]
    fn default_is_every_100() {
        assert_eq!(RemapSchedule::default(), RemapSchedule::every(100));
        assert_eq!(RemapSchedule::default().to_string(), "every 100 iterations");
    }

    #[test]
    fn paper_sweep_is_descending() {
        let s = RemapSchedule::PAPER_SWEEP;
        assert!(s.windows(2).all(|w| w[0] > w[1]));
        assert_eq!(s[4], 50, "saturation point highlighted in §5");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_rejected() {
        let _ = RemapSchedule::every(0);
    }
}
