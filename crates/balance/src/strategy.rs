//! Strategy names and configuration matrix.

use std::fmt;
use std::str::FromStr;

/// One software re-mapping strategy, applicable within lanes (rows) or
/// between lanes (columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Strategy {
    /// `St`: no re-mapping; the identity layout forever.
    Static,
    /// `Ra`: a fresh uniformly random permutation at every re-mapping
    /// opportunity. Most effective, but scatters the bits of a variable
    /// (problematic for row-parallel memory accesses, Fig. 8).
    Random,
    /// `Bs`: a cumulative shift by one byte (8 addresses) at every
    /// re-mapping opportunity. Keeps variables byte-aligned and
    /// access-friendly.
    ByteShift,
}

impl Strategy {
    /// All strategies, in the paper's presentation order.
    pub const ALL: [Strategy; 3] = [Strategy::Static, Strategy::Random, Strategy::ByteShift];

    /// The paper's two-letter label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Strategy::Static => "St",
            Strategy::Random => "Ra",
            Strategy::ByteShift => "Bs",
        }
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Error returned when parsing a [`Strategy`] or [`BalanceConfig`] fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseConfigError {
    input: String,
}

impl ParseConfigError {
    /// The rejected input string, verbatim.
    #[must_use]
    pub fn input(&self) -> &str {
        &self.input
    }
}

impl fmt::Display for ParseConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid balance configuration `{}`: expected `<row>x<col>` with an optional \
             `+Hw` suffix (e.g. `StxSt`, `RaxBs+Hw`), where each strategy is one of \
             `St`/`static`, `Ra`/`random`, `Bs`/`byte-shift`",
            self.input
        )
    }
}

impl std::error::Error for ParseConfigError {}

impl FromStr for Strategy {
    type Err = ParseConfigError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "st" | "static" => Ok(Strategy::Static),
            "ra" | "random" => Ok(Strategy::Random),
            "bs" | "byteshift" | "byte-shift" => Ok(Strategy::ByteShift),
            _ => Err(ParseConfigError { input: s.to_owned() }),
        }
    }
}

/// A complete load-balancing configuration: row strategy × column strategy,
/// optionally with hardware re-mapping.
///
/// The paper evaluates all 3 × 3 software combinations with `Hw` on and off —
/// 18 configurations per benchmark (§4), labeled like `RaxBs+Hw` (row
/// strategy × column strategy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BalanceConfig {
    /// Within-lane (row) strategy.
    pub row: Strategy,
    /// Between-lane (column) strategy.
    pub col: Strategy,
    /// Whether hardware free-row re-mapping is enabled.
    pub hw: bool,
}

impl BalanceConfig {
    /// The paper's baseline: `StxSt`, no re-mapping of any kind.
    #[must_use]
    pub fn baseline() -> Self {
        BalanceConfig { row: Strategy::Static, col: Strategy::Static, hw: false }
    }

    /// Creates a configuration.
    #[must_use]
    pub fn new(row: Strategy, col: Strategy, hw: bool) -> Self {
        BalanceConfig { row, col, hw }
    }

    /// All 18 configurations, software combinations first without `Hw`
    /// (matching the layout of Figs. 14–16: panels a–i, then j–r).
    #[must_use]
    pub fn all() -> Vec<BalanceConfig> {
        let mut configs = Vec::with_capacity(18);
        for hw in [false, true] {
            for col in Strategy::ALL {
                for row in Strategy::ALL {
                    configs.push(BalanceConfig { row, col, hw });
                }
            }
        }
        configs
    }

    /// The nine software-only configurations (no `Hw`).
    #[must_use]
    pub fn software_only() -> Vec<BalanceConfig> {
        BalanceConfig::all().into_iter().filter(|c| !c.hw).collect()
    }

    /// Whether any re-mapping is active at all.
    #[must_use]
    pub fn is_static(&self) -> bool {
        self.row == Strategy::Static && self.col == Strategy::Static && !self.hw
    }
}

impl Default for BalanceConfig {
    fn default() -> Self {
        BalanceConfig::baseline()
    }
}

impl fmt::Display for BalanceConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.row, self.col)?;
        if self.hw {
            write!(f, "+Hw")?;
        }
        Ok(())
    }
}

impl FromStr for BalanceConfig {
    type Err = ParseConfigError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseConfigError { input: s.to_owned() };
        let (body, hw) = match s.strip_suffix("+Hw").or_else(|| s.strip_suffix("+hw")) {
            Some(body) => (body, true),
            None => (s, false),
        };
        let (row, col) = body.split_once(['x', 'X']).ok_or_else(err)?;
        Ok(BalanceConfig {
            row: row.parse().map_err(|_| err())?,
            col: col.parse().map_err(|_| err())?,
            hw,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eighteen_configurations() {
        let all = BalanceConfig::all();
        assert_eq!(all.len(), 18);
        let unique: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(unique.len(), 18);
        assert_eq!(BalanceConfig::software_only().len(), 9);
    }

    #[test]
    fn display_matches_paper_labels() {
        let c = BalanceConfig::new(Strategy::Random, Strategy::ByteShift, true);
        assert_eq!(c.to_string(), "RaxBs+Hw");
        assert_eq!(BalanceConfig::baseline().to_string(), "StxSt");
    }

    #[test]
    fn parse_round_trips() {
        for c in BalanceConfig::all() {
            let parsed: BalanceConfig = c.to_string().parse().expect("round trip");
            assert_eq!(parsed, c);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("RaBs".parse::<BalanceConfig>().is_err());
        assert!("QqxSt".parse::<BalanceConfig>().is_err());
        assert!("".parse::<BalanceConfig>().is_err());
        let err = "bogus".parse::<BalanceConfig>().unwrap_err();
        assert!(err.to_string().contains("bogus"));
        assert_eq!(err.input(), "bogus");
        // The message teaches the valid vocabulary, not just the rejection.
        for name in ["St", "Ra", "Bs", "+Hw", "random", "byte-shift"] {
            assert!(err.to_string().contains(name), "message should mention {name}");
        }
    }

    #[test]
    fn baseline_is_static() {
        assert!(BalanceConfig::baseline().is_static());
        assert!(!BalanceConfig::new(Strategy::Static, Strategy::Static, true).is_static());
        assert_eq!(BalanceConfig::default(), BalanceConfig::baseline());
    }

    #[test]
    fn strategy_parse_aliases() {
        assert_eq!("random".parse::<Strategy>().unwrap(), Strategy::Random);
        assert_eq!("BS".parse::<Strategy>().unwrap(), Strategy::ByteShift);
        assert_eq!("st".parse::<Strategy>().unwrap(), Strategy::Static);
    }
}
