//! Start-Gap wear leveling — the classic *standard-memory* NVM strategy
//! (Qureshi et al., MICRO 2009) that §3.2 and Fig. 6 argue cannot be
//! applied to PIM.
//!
//! Start-Gap keeps one spare ("gap") line and two registers. Every ψ writes
//! the gap moves down by one line (the displaced line's contents shift into
//! the old gap), and once the gap has traversed the whole memory the start
//! register advances, so every logical line slowly rotates through every
//! physical line. It is beautifully cheap for ordinary memory — and exactly
//! the kind of *independent word movement* that corrupts PIM computations,
//! because two operands that must stay physically aligned across lanes get
//! relocated at different times. The integration tests use this
//! implementation to demonstrate that failure mode concretely.

/// The Start-Gap address translator over `n` logical lines backed by
/// `n + 1` physical lines.
///
/// # Examples
///
/// ```
/// use nvpim_balance::start_gap::StartGap;
///
/// let mut sg = StartGap::new(4, 2); // 4 logical lines, rotate every 2 writes
/// assert_eq!(sg.translate(0), 0);
/// for _ in 0..2 {
///     sg.record_write(0);
/// }
/// // The gap moved: line 3 now lives where the gap was.
/// assert_eq!(sg.translate(3), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StartGap {
    n: usize,
    start: usize,
    gap: usize,
    psi: u64,
    writes_since_move: u64,
    total_moves: u64,
}

impl StartGap {
    /// Creates a translator for `n` logical lines that moves the gap every
    /// `psi` writes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `psi == 0`.
    #[must_use]
    pub fn new(n: usize, psi: u64) -> Self {
        assert!(n > 0, "start-gap needs at least one line");
        assert!(psi > 0, "gap movement period must be positive");
        StartGap { n, start: 0, gap: n, psi, writes_since_move: 0, total_moves: 0 }
    }

    /// Number of logical lines.
    #[must_use]
    pub fn logical_lines(&self) -> usize {
        self.n
    }

    /// Number of physical lines (`n + 1`, including the gap).
    #[must_use]
    pub fn physical_lines(&self) -> usize {
        self.n + 1
    }

    /// Current gap position.
    #[must_use]
    pub fn gap(&self) -> usize {
        self.gap
    }

    /// Current start register.
    #[must_use]
    pub fn start(&self) -> usize {
        self.start
    }

    /// Total gap movements so far.
    #[must_use]
    pub fn total_moves(&self) -> u64 {
        self.total_moves
    }

    /// Physical line currently holding logical line `logical`.
    ///
    /// # Panics
    ///
    /// Panics if `logical >= n`.
    #[must_use]
    pub fn translate(&self, logical: usize) -> usize {
        assert!(logical < self.n, "logical line {logical} out of range");
        let pa = (logical + self.start) % self.n;
        if pa >= self.gap {
            pa + 1
        } else {
            pa
        }
    }

    /// Records one write to a logical line; after every ψ writes the gap
    /// moves. Returns `true` if a gap movement (one line copy) occurred —
    /// the caller is responsible for physically moving the displaced line's
    /// data (which is precisely what PIM cannot afford to do per-word).
    pub fn record_write(&mut self, _logical: usize) -> bool {
        self.writes_since_move += 1;
        if self.writes_since_move < self.psi {
            return false;
        }
        self.writes_since_move = 0;
        self.total_moves += 1;
        if self.gap == 0 {
            self.gap = self.n;
            self.start = (self.start + 1) % self.n;
        } else {
            self.gap -= 1;
        }
        true
    }

    /// The extra physical write caused by each gap movement (the displaced
    /// line copy), amortized per program write: `1 / ψ`.
    #[must_use]
    pub fn write_overhead(&self) -> f64 {
        1.0 / self.psi as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_bijective(sg: &StartGap) {
        let mut seen = vec![false; sg.physical_lines()];
        for l in 0..sg.logical_lines() {
            let p = sg.translate(l);
            assert!(!seen[p], "collision at physical {p}");
            seen[p] = true;
        }
        // Exactly one physical line (the gap) is unused.
        assert_eq!(seen.iter().filter(|&&s| !s).count(), 1);
        assert!(!seen[sg.gap()], "gap must be the unused line");
    }

    #[test]
    fn initial_mapping_is_identity() {
        let sg = StartGap::new(8, 4);
        for l in 0..8 {
            assert_eq!(sg.translate(l), l);
        }
        assert_bijective(&sg);
    }

    #[test]
    fn gap_walks_and_start_advances() {
        let mut sg = StartGap::new(4, 1);
        // 4 movements bring the gap to 0; the 5th wraps it and bumps start.
        for _ in 0..4 {
            sg.record_write(0);
            assert_bijective(&sg);
        }
        assert_eq!(sg.gap(), 0);
        assert_eq!(sg.start(), 0);
        sg.record_write(0);
        assert_eq!(sg.gap(), 4);
        assert_eq!(sg.start(), 1);
        assert_bijective(&sg);
    }

    #[test]
    fn rotation_visits_every_physical_line() {
        // After n(n+1) movements every logical line has occupied every
        // physical line at least once.
        let n = 6;
        let mut sg = StartGap::new(n, 1);
        let mut visited = vec![vec![false; n + 1]; n];
        for _ in 0..(n * (n + 1) * 2) {
            for (l, row) in visited.iter_mut().enumerate() {
                row[sg.translate(l)] = true;
            }
            sg.record_write(0);
        }
        for (l, row) in visited.iter().enumerate() {
            assert!(row.iter().all(|&v| v), "logical {l} missed a physical line: {row:?}");
        }
    }

    #[test]
    fn levels_a_pathologically_skewed_write_stream() {
        // 90% of writes hit line 0 — the workload Start-Gap was designed
        // for. Physical wear must end up nearly uniform.
        let n = 16;
        let mut sg = StartGap::new(n, 8);
        let mut wear = vec![0u64; n + 1];
        for i in 0..200_000u64 {
            let logical = if i % 10 == 0 { (i as usize / 10) % n } else { 0 };
            wear[sg.translate(logical)] += 1;
            sg.record_write(logical);
        }
        let max = *wear.iter().max().unwrap() as f64;
        let mean = wear.iter().sum::<u64>() as f64 / wear.len() as f64;
        assert!(
            max / mean < 1.35,
            "start-gap must level a 90%-skewed stream: max/mean {}",
            max / mean
        );
    }

    #[test]
    fn without_leveling_the_same_stream_is_catastrophic() {
        // Reference point for the test above.
        let n = 16;
        let mut wear = vec![0u64; n];
        for i in 0..200_000u64 {
            let logical = if i % 10 == 0 { (i as usize / 10) % n } else { 0 };
            wear[logical] += 1;
        }
        let max = *wear.iter().max().unwrap() as f64;
        let mean = wear.iter().sum::<u64>() as f64 / wear.len() as f64;
        assert!(max / mean > 10.0);
    }

    #[test]
    fn overhead_is_one_over_psi() {
        assert!((StartGap::new(8, 100).write_overhead() - 0.01).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_translate_panics() {
        let sg = StartGap::new(4, 1);
        let _ = sg.translate(4);
    }
}
