//! Hardware free-row re-mapping (register renaming for memory rows).
//!
//! §3.2's lightweight hardware scheme keeps one spare row per lane: for a
//! lane with `N` physical cells there are `N − 1` logical addresses and one
//! free physical address. When a qualifying write is performed to logical
//! address `A`, the hardware redirects it to the free physical row, marks
//! that row as holding `A`, and the row previously holding `A` becomes free.
//! The paper's evaluation applies this "upon every gate that uses all lanes"
//! (§4), the most aggressive setting.

/// The free-row renaming state machine of one PIM array.
///
/// # Examples
///
/// ```
/// use nvpim_balance::HwRemapper;
///
/// let mut hw = HwRemapper::new(4); // 4 physical rows, 3 logical addresses
/// assert_eq!(hw.lookup(1), 1);
/// assert_eq!(hw.free_row(), 3);
/// let target = hw.redirect(1); // a gate writes logical row 1
/// assert_eq!(target, 3);       // ...redirected into the free row
/// assert_eq!(hw.lookup(1), 3);
/// assert_eq!(hw.free_row(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct HwRemapper {
    map: Vec<usize>,
    free: usize,
    redirects: u64,
}

/// Equality compares the mapping state only, not the redirect tally — two
/// remappers that rename identically are interchangeable.
impl PartialEq for HwRemapper {
    fn eq(&self, other: &Self) -> bool {
        self.map == other.map && self.free == other.free
    }
}

impl Eq for HwRemapper {}

impl HwRemapper {
    /// Creates the remapper for an array with `physical_rows` rows per lane.
    /// The highest row starts out as the free row, leaving
    /// `physical_rows − 1` logical addresses.
    ///
    /// # Panics
    ///
    /// Panics if `physical_rows < 2` (renaming needs at least one logical
    /// and one free row).
    #[must_use]
    pub fn new(physical_rows: usize) -> Self {
        assert!(physical_rows >= 2, "hardware re-mapping needs at least 2 rows");
        HwRemapper { map: (0..physical_rows - 1).collect(), free: physical_rows - 1, redirects: 0 }
    }

    /// Number of logical addresses (`physical_rows − 1`).
    #[must_use]
    pub fn logical_rows(&self) -> usize {
        self.map.len()
    }

    /// The currently free physical row.
    #[must_use]
    pub fn free_row(&self) -> usize {
        self.free
    }

    /// Physical row currently holding logical address `logical`.
    ///
    /// # Panics
    ///
    /// Panics if `logical` is out of bounds.
    #[must_use]
    pub fn lookup(&self, logical: usize) -> usize {
        self.map[logical]
    }

    /// Redirects a qualifying write to logical address `logical` into the
    /// free row, swaps the free row, and returns the physical row written.
    pub fn redirect(&mut self, logical: usize) -> usize {
        self.redirects += 1;
        let target = self.free;
        self.free = std::mem::replace(&mut self.map[logical], target);
        target
    }

    /// Lifetime count of redirects performed (observability: one per
    /// all-lane gate under the paper's §4 policy).
    #[must_use]
    pub fn redirects(&self) -> u64 {
        self.redirects
    }

    /// Books `count` redirects into the lifetime tally without touching the
    /// mapping — the compiled-kernel path performs a whole epoch's redirects
    /// algebraically ([`HwRemapper::set_arrangement`]) and accounts for them
    /// here, keeping the observability counter exact.
    pub fn add_redirects(&mut self, count: u64) {
        self.redirects += count;
    }

    /// The full renaming state as one arrangement: positions `0..n−1` hold
    /// the logical→physical map, position `n` holds the free row. Together
    /// with [`HwRemapper::set_arrangement`] this lets the compiled-kernel
    /// path treat a whole epoch of redirects as a permutation composition.
    #[must_use]
    pub fn arrangement(&self) -> Vec<usize> {
        let mut arr = self.map.clone();
        arr.push(self.free);
        arr
    }

    /// Restores the renaming state from an arrangement (the inverse of
    /// [`HwRemapper::arrangement`]). The redirect tally is left alone; pair
    /// with [`HwRemapper::add_redirects`] for exact accounting.
    ///
    /// # Panics
    ///
    /// Panics if `arr` has the wrong length or is not a permutation of the
    /// physical rows.
    pub fn set_arrangement(&mut self, arr: &[usize]) {
        let n = self.map.len() + 1;
        assert_eq!(arr.len(), n, "arrangement must cover all {n} physical rows");
        let mut seen = vec![false; n];
        for &p in arr {
            assert!(p < n && !seen[p], "arrangement is not a permutation of the physical rows");
            seen[p] = true;
        }
        self.map.copy_from_slice(&arr[..n - 1]);
        self.free = arr[n - 1];
    }

    /// A 64-bit FNV-1a fingerprint of the renaming state (map + free row,
    /// excluding the redirect tally). Two remappers with equal fingerprints
    /// rename identically with overwhelming probability; equal states always
    /// fingerprint equally, so this is a cheap state-continuity witness for
    /// the compiled replay path (used by `nvpim-check`).
    #[must_use]
    pub fn state_fingerprint(&self) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for &p in self.map.iter().chain(std::iter::once(&self.free)) {
            for byte in (p as u64).to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        hash
    }

    /// Whether the mapping is a valid bijection onto the physical rows
    /// (used by tests and debug assertions).
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        let n = self.map.len() + 1;
        let mut seen = vec![false; n];
        for &p in self.map.iter().chain(std::iter::once(&self.free)) {
            if p >= n || seen[p] {
                return false;
            }
            seen[p] = true;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_is_identity_with_top_free() {
        let hw = HwRemapper::new(8);
        assert_eq!(hw.logical_rows(), 7);
        assert_eq!(hw.free_row(), 7);
        for i in 0..7 {
            assert_eq!(hw.lookup(i), i);
        }
        assert!(hw.is_consistent());
    }

    #[test]
    fn redirect_swaps_free() {
        let mut hw = HwRemapper::new(4);
        assert_eq!(hw.redirect(0), 3);
        assert_eq!(hw.lookup(0), 3);
        assert_eq!(hw.free_row(), 0);
        assert_eq!(hw.redirect(2), 0);
        assert_eq!(hw.lookup(2), 0);
        assert_eq!(hw.free_row(), 2);
        assert!(hw.is_consistent());
    }

    #[test]
    fn repeated_redirects_to_same_address_bounce() {
        let mut hw = HwRemapper::new(3);
        // Writing logical 0 over and over ping-pongs between rows 0 and 2.
        let targets: Vec<usize> = (0..6).map(|_| hw.redirect(0)).collect();
        assert_eq!(targets, vec![2, 0, 2, 0, 2, 0]);
        assert!(hw.is_consistent());
    }

    #[test]
    fn consistency_over_random_workload() {
        let mut hw = HwRemapper::new(17);
        let mut x = 12345u64;
        for _ in 0..10_000 {
            // Cheap xorshift; avoids pulling rand into this unit test.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            hw.redirect((x % 16) as usize);
        }
        assert!(hw.is_consistent());
    }

    #[test]
    fn redirects_spread_writes_across_all_rows() {
        // The whole point of Hw: a single hot logical address must not pin a
        // single physical row when interleaved with other traffic.
        let mut hw = HwRemapper::new(9);
        let mut hits = vec![0u32; 9];
        for i in 0..800 {
            // Alternate the hot address 0 with a round-robin of others.
            let logical = if i % 2 == 0 { 0 } else { 1 + (i / 2) % 7 };
            hits[hw.redirect(logical)] += 1;
        }
        let max = *hits.iter().max().unwrap();
        let min = *hits.iter().min().unwrap();
        assert!(max < 2 * (min + 1), "writes should spread: {hits:?}");
    }

    #[test]
    #[should_panic(expected = "at least 2 rows")]
    fn tiny_array_rejected() {
        let _ = HwRemapper::new(1);
    }

    #[test]
    fn arrangement_round_trips_the_state() {
        let mut hw = HwRemapper::new(6);
        for i in 0..40 {
            hw.redirect(i % 5);
        }
        let arr = hw.arrangement();
        assert_eq!(arr.len(), 6);
        assert_eq!(arr[5], hw.free_row());
        let mut restored = HwRemapper::new(6);
        restored.set_arrangement(&arr);
        assert_eq!(restored, hw, "arrangement must capture the full mapping state");
        assert_eq!(restored.state_fingerprint(), hw.state_fingerprint());
        assert_eq!(restored.redirects(), 0, "the tally is bookkept separately");
        restored.add_redirects(40);
        assert_eq!(restored.redirects(), hw.redirects());
    }

    #[test]
    fn fingerprint_distinguishes_states() {
        let fresh = HwRemapper::new(8);
        let mut moved = HwRemapper::new(8);
        moved.redirect(3);
        assert_ne!(fresh.state_fingerprint(), moved.state_fingerprint());
        // Swapping back restores the state and the fingerprint.
        moved.redirect(3);
        assert_eq!(fresh.state_fingerprint(), moved.state_fingerprint());
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn set_arrangement_rejects_duplicates() {
        let mut hw = HwRemapper::new(4);
        hw.set_arrangement(&[0, 1, 1, 3]);
    }

    #[test]
    #[should_panic(expected = "physical rows")]
    fn set_arrangement_rejects_wrong_length() {
        let mut hw = HwRemapper::new(4);
        hw.set_arrangement(&[0, 1, 2]);
    }
}
