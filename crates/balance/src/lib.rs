//! Load-balancing strategies for nonvolatile PIM arrays.
//!
//! Limited endurance makes imbalanced cell usage fatal: the most-written cell
//! determines array lifetime (Eq. 4 of the paper). §3.2 adapts classic NVM
//! wear-leveling to PIM, where naïve write redirection would corrupt
//! computations because input operands must stay physically aligned. The
//! strategies here preserve that alignment by re-mapping *whole address
//! spaces* — rows within lanes, and lanes within the array — rather than
//! individual words:
//!
//! * [`Strategy`] — `St` (static), `Ra` (random shuffling), `Bs`
//!   (byte-shifting), applied independently to rows and lanes and combined
//!   into the paper's 9 software configurations via [`BalanceConfig`];
//! * [`StrategyMapper`] — the epoch-advancing permutation behind `Ra`/`Bs`;
//! * [`HwRemapper`] — register-renaming-style hardware re-mapping with one
//!   spare row per lane (+`Hw` configurations);
//! * [`CombinedMap`] — the composition of all three, implementing
//!   [`nvpim_array::AddressMap`] so traces execute under it directly;
//! * [`RemapSchedule`] — how often software re-mapping (re-compilation) may
//!   occur;
//! * [`access_aware`] — the COPY-gate shuffling overhead analysis (Table 2).
//!
//! # Examples
//!
//! ```
//! use nvpim_balance::{BalanceConfig, Strategy};
//!
//! let config: BalanceConfig = "RaxBs+Hw".parse()?;
//! assert_eq!(config.row, Strategy::Random);
//! assert_eq!(config.col, Strategy::ByteShift);
//! assert!(config.hw);
//! assert_eq!(BalanceConfig::all().len(), 18);
//! # Ok::<(), nvpim_balance::ParseConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access_aware;
pub mod access_cost;
pub mod combined;
pub mod hw;
pub mod mapper;
pub mod schedule;
pub mod start_gap;
pub mod strategy;

pub use combined::{CombinedMap, ScheduledMap};
pub use hw::HwRemapper;
pub use mapper::StrategyMapper;
pub use schedule::RemapSchedule;
pub use start_gap::StartGap;
pub use strategy::{BalanceConfig, ParseConfigError, Strategy};
