//! Deterministic fan-out of experiment matrices over a [`JobPool`].

use crate::JobPool;

/// Runs lists of independent jobs on a pool, returning results in
/// submission order.
///
/// This is the engine behind the simulation stack's parallel entry points
/// (`run_all_configs_parallel`, the parallel re-mapping sweep, the `repro`
/// figure matrix): callers enumerate the experiment matrix as a `Vec` of job
/// descriptors, and the runner guarantees the output `Vec` lines up
/// element-for-element with the input — bit-identical to the serial loop.
///
/// # Examples
///
/// ```
/// use nvpim_exec::ParallelRunner;
///
/// let runner = ParallelRunner::new(2);
/// // A 2-D matrix flattened in row-major submission order.
/// let jobs: Vec<(u32, u32)> =
///     (0..3).flat_map(|a| (0..4).map(move |b| (a, b))).collect();
/// let sums = runner.run(jobs.clone(), |(a, b)| a + b);
/// assert_eq!(sums.len(), 12);
/// assert_eq!(sums[5], jobs[5].0 + jobs[5].1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParallelRunner {
    pool: JobPool,
}

impl ParallelRunner {
    /// A runner over `jobs` workers (`0` = auto: `NVPIM_THREADS`, else the
    /// machine's parallelism).
    #[must_use]
    pub fn new(jobs: usize) -> Self {
        ParallelRunner { pool: JobPool::new(jobs) }
    }

    /// A runner sized by the environment.
    #[must_use]
    pub fn from_env() -> Self {
        ParallelRunner { pool: JobPool::from_env() }
    }

    /// The underlying pool.
    #[must_use]
    pub fn pool(&self) -> JobPool {
        self.pool
    }

    /// Worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Workers that would actually be spawned for `jobs` items (the
    /// configured width clamped to the machine and the job count); `<= 1`
    /// means the run executes inline on the calling thread.
    #[must_use]
    pub fn effective_threads(&self, jobs: usize) -> usize {
        self.pool.effective_threads(jobs)
    }

    /// Executes every job, returning outputs in submission order.
    pub fn run<I, O, F>(&self, jobs: Vec<I>, f: F) -> Vec<O>
    where
        I: Send,
        O: Send,
        F: Fn(I) -> O + Sync,
    {
        self.pool.map(jobs, f)
    }

    /// Executes one job per element of a cartesian product `outer × inner`,
    /// in row-major submission order (all of `inner` for `outer[0]` first).
    ///
    /// A convenience for two-axis experiment matrices such as
    /// (workload × configuration); wider matrices flatten their axes into
    /// the job descriptor and use [`ParallelRunner::run`].
    pub fn run_product<A, B, O, F>(&self, outer: &[A], inner: &[B], f: F) -> Vec<O>
    where
        A: Sync,
        B: Sync,
        O: Send,
        F: Fn(&A, &B) -> O + Sync,
    {
        let jobs: Vec<(usize, usize)> =
            (0..outer.len()).flat_map(|a| (0..inner.len()).map(move |b| (a, b))).collect();
        self.pool.map(jobs, |(a, b)| f(&outer[a], &inner[b]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_matches_serial_map() {
        let jobs: Vec<u64> = (0..50).collect();
        let serial: Vec<u64> = jobs.iter().map(|&x| x * x + 1).collect();
        for threads in [1, 2, 8] {
            let parallel = ParallelRunner::new(threads).run(jobs.clone(), |x| x * x + 1);
            assert_eq!(parallel, serial, "{threads} threads");
        }
    }

    #[test]
    fn product_is_row_major() {
        let runner = ParallelRunner::new(3);
        let out = runner.run_product(&[10u32, 20], &[1u32, 2, 3], |a, b| a + b);
        assert_eq!(out, vec![11, 12, 13, 21, 22, 23]);
    }

    #[test]
    fn product_with_empty_axis_is_empty() {
        let runner = ParallelRunner::new(2);
        let out = runner.run_product(&[1u8, 2], &[] as &[u8], |a, b| a + b);
        assert!(out.is_empty());
    }
}
