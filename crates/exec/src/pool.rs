//! A scoped-thread job pool with a shared work queue.
//!
//! Workers are spawned inside [`std::thread::scope`], so borrowed job inputs
//! (workload references, simulator configs) need no `'static` bound and no
//! reference counting. The queue hands out jobs by submission index; each
//! result is written into the slot of its index, making the output order
//! independent of worker scheduling.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, Once, OnceLock};

/// Environment variable overriding the pool's default width.
pub const THREADS_ENV: &str = "NVPIM_THREADS";

/// The machine's detected parallelism
/// ([`std::thread::available_parallelism`], 1 if unknown), queried once per
/// process. The detection is a syscall on most platforms; caching it keeps
/// repeated pool construction and spawn-width clamping off the kernel.
#[must_use]
pub fn machine_parallelism() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| std::thread::available_parallelism().map_or(1, usize::from))
}

/// The pool width used when none is requested explicitly: the
/// `NVPIM_THREADS` environment variable if set to a positive integer,
/// otherwise [`machine_parallelism`]. The environment is re-read on every
/// call (tests and long-lived services may change it); only the hardware
/// detection is cached.
#[must_use]
pub fn available_threads() -> usize {
    match parse_threads(std::env::var(THREADS_ENV).ok().as_deref()) {
        Some(n) => n,
        None => machine_parallelism(),
    }
}

/// Validates an `NVPIM_THREADS`-style override without side effects.
///
/// `Ok(None)` means "no override" (unset, empty, or an explicit `0` — the
/// documented spelling of "auto"); `Ok(Some(n))` is an accepted width;
/// `Err(rejected)` carries a value that is present but not a non-negative
/// integer (`abc`, `-3`, `1.5`, …) and must not be silently ignored.
pub fn validate_threads(value: Option<&str>) -> Result<Option<usize>, String> {
    let Some(raw) = value else { return Ok(None) };
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    match trimmed.parse::<usize>() {
        Ok(0) => Ok(None),
        Ok(n) => Ok(Some(n)),
        Err(_) => Err(raw.to_owned()),
    }
}

/// Parses an `NVPIM_THREADS`-style override. `None`, empty, or zero mean
/// "no override"; an *invalid* value (unparsable or negative) also resolves
/// to "no override" but emits a one-time stderr warning naming the rejected
/// value, bumps [`invalid_env_rejections`], and — when a process-wide
/// [`nvpim_obs::Observer`] is installed — records an
/// `exec.invalid_threads_env` counter and message event.
#[must_use]
pub fn parse_threads(value: Option<&str>) -> Option<usize> {
    match validate_threads(value) {
        Ok(width) => width,
        Err(rejected) => {
            note_invalid_override(&rejected);
            None
        }
    }
}

static INVALID_ENV_REJECTIONS: AtomicU64 = AtomicU64::new(0);
static WARN_ONCE: Once = Once::new();

/// How many invalid `NVPIM_THREADS` values have been rejected so far in
/// this process (the stderr warning is printed only for the first).
#[must_use]
pub fn invalid_env_rejections() -> u64 {
    INVALID_ENV_REJECTIONS.load(Ordering::Relaxed)
}

fn note_invalid_override(rejected: &str) {
    INVALID_ENV_REJECTIONS.fetch_add(1, Ordering::Relaxed);
    let message = format!(
        "ignoring invalid {THREADS_ENV}={rejected:?} (expected a non-negative \
         integer; 0 = auto); falling back to auto-detected parallelism"
    );
    if let Some(observer) = nvpim_obs::observer::current() {
        use nvpim_obs::EventSink as _;
        observer
            .record(&nvpim_obs::Event::CounterAdd { name: "exec.invalid_threads_env", delta: 1 });
        observer.record(&nvpim_obs::Event::Message { text: &message });
    }
    WARN_ONCE.call_once(|| eprintln!("nvpim-exec: {message}"));
}

/// A fixed-width pool of scoped worker threads draining a shared job queue.
///
/// The pool itself holds no threads — they live only for the duration of one
/// [`JobPool::map`] call — so a `JobPool` is just a validated width and is
/// trivially `Copy`.
///
/// # Examples
///
/// ```
/// use nvpim_exec::JobPool;
///
/// let pool = JobPool::new(2);
/// let doubled = pool.map(vec![1, 2, 3], |x| x * 2);
/// assert_eq!(doubled, vec![2, 4, 6]);
/// assert_eq!(pool.threads(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobPool {
    threads: usize,
}

/// The work queue: jobs are taken in submission order; each carries its
/// submission index so the worker can store the result in the right slot.
struct Queue<I> {
    items: Vec<Option<I>>,
    next: usize,
}

impl JobPool {
    /// A pool of exactly `threads` workers. `threads == 0` means "auto":
    /// [`available_threads`] (the `NVPIM_THREADS` override, else the
    /// machine's parallelism).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        JobPool { threads: if threads == 0 { available_threads() } else { threads } }
    }

    /// A pool sized by the environment ([`available_threads`]).
    #[must_use]
    pub fn from_env() -> Self {
        JobPool::new(0)
    }

    /// Worker count this pool runs with.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Worker threads [`JobPool::map`] would actually spawn for `jobs`
    /// queued items: the configured width clamped to the machine's
    /// parallelism and the job count (never below 1). Callers can use
    /// `effective_threads(n) <= 1` to predict the inline path and skip
    /// per-worker setup of their own.
    #[must_use]
    pub fn effective_threads(&self, jobs: usize) -> usize {
        self.threads.min(machine_parallelism()).min(jobs).max(1)
    }

    /// Applies `f` to every item, returning the outputs in submission order.
    ///
    /// When [`JobPool::effective_threads`] resolves to one worker — a width
    /// of 1, a single item, or a single-core machine (oversubscribing cores
    /// only adds scheduling overhead to CPU-bound simulation jobs) — the
    /// jobs run inline on the calling thread: no threads are spawned and
    /// execution is exactly the serial loop. Otherwise that many scoped
    /// workers drain the queue.
    ///
    /// # Panics
    ///
    /// If a job panics, the panic propagates to the caller once the worker
    /// scope joins (mirroring a panic in the serial loop). Remaining queued
    /// jobs may or may not have started by then.
    pub fn map<I, O, F>(&self, items: Vec<I>, f: F) -> Vec<O>
    where
        I: Send,
        O: Send,
        F: Fn(I) -> O + Sync,
    {
        let n = items.len();
        let workers = self.effective_threads(n);
        if workers <= 1 || n <= 1 {
            return items.into_iter().map(f).collect();
        }

        let queue = Mutex::new(Queue { items: items.into_iter().map(Some).collect(), next: 0 });
        let results: Mutex<Vec<Option<O>>> = Mutex::new((0..n).map(|_| None).collect());
        std::thread::scope(|scope| {
            for worker in 0..workers {
                // Named workers so trace exports (Chrome `thread_name`
                // metadata) and panic messages identify the lane.
                std::thread::Builder::new()
                    .name(format!("nvpim-worker-{worker}"))
                    .spawn_scoped(scope, || loop {
                        let (index, item) = {
                            let mut q = queue.lock().expect("job queue poisoned");
                            if q.next >= q.items.len() {
                                break;
                            }
                            let index = q.next;
                            q.next += 1;
                            (index, q.items[index].take().expect("job taken twice"))
                        };
                        let output = f(item);
                        results.lock().expect("result slots poisoned")[index] = Some(output);
                    })
                    .expect("spawn pool worker");
            }
        });

        results
            .into_inner()
            .expect("result slots poisoned")
            .into_iter()
            .map(|slot| slot.expect("worker scope joined with job incomplete"))
            .collect()
    }
}

impl Default for JobPool {
    fn default() -> Self {
        JobPool::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::AssertUnwindSafe;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_keep_submission_order() {
        // Stagger job durations so completion order differs from submission
        // order; the output must still follow submission order.
        let pool = JobPool::new(4);
        let out = pool.map((0..32u64).collect(), |i| {
            if i % 4 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i * 10
        });
        assert_eq!(out, (0..32u64).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_runs_inline() {
        // With one worker no threads are spawned: the closure observes the
        // caller's thread id for every job.
        let caller = std::thread::current().id();
        let pool = JobPool::new(1);
        let ids = pool.map(vec![(); 8], |()| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let ran = AtomicUsize::new(0);
        let out = JobPool::new(8).map((0..100usize).collect(), |i| {
            ran.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(ran.load(Ordering::Relaxed), 100);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        let out = JobPool::new(16).map(vec![1, 2], |x| x + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = JobPool::new(4).map(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let pool = JobPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.map((0..8u32).collect(), |i| {
                assert!(i != 5, "job 5 exploded");
                i
            })
        }));
        assert!(result.is_err(), "a panicking job must fail the whole map");
    }

    #[test]
    fn zero_width_resolves_to_environment() {
        assert!(JobPool::new(0).threads() >= 1);
        assert!(JobPool::from_env().threads() >= 1);
    }

    #[test]
    fn machine_parallelism_is_stable_and_positive() {
        let first = machine_parallelism();
        assert!(first >= 1);
        assert_eq!(machine_parallelism(), first, "cached value must not drift");
    }

    #[test]
    fn effective_threads_clamps_to_machine_and_jobs() {
        let pool = JobPool::new(64);
        // Never wider than the machine or the job list, never zero.
        assert!(pool.effective_threads(100) <= machine_parallelism());
        assert_eq!(pool.effective_threads(0), 1);
        assert_eq!(pool.effective_threads(1), 1);
        assert_eq!(JobPool::new(1).effective_threads(100), 1);
        // The configured width is still reported unclamped.
        assert_eq!(pool.threads(), 64);
    }

    #[test]
    fn oversubscribed_pool_still_runs_every_job() {
        // A pool far wider than the machine must behave exactly like the
        // serial loop (results, order, exactly-once) — only the spawn width
        // is clamped.
        let ran = AtomicUsize::new(0);
        let out = JobPool::new(1024).map((0..40usize).collect(), |i| {
            ran.fetch_add(1, Ordering::Relaxed);
            i * 7
        });
        assert_eq!(ran.load(Ordering::Relaxed), 40);
        assert_eq!(out, (0..40).map(|i| i * 7).collect::<Vec<_>>());
    }

    #[test]
    fn threads_override_parsing() {
        assert_eq!(parse_threads(None), None);
        assert_eq!(parse_threads(Some("")), None);
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(parse_threads(Some("banana")), None);
        assert_eq!(parse_threads(Some("3")), Some(3));
        assert_eq!(parse_threads(Some(" 12 ")), Some(12));
    }

    #[test]
    fn accepted_values_do_not_count_as_rejections() {
        let before = invalid_env_rejections();
        assert_eq!(validate_threads(Some("4")), Ok(Some(4)));
        assert_eq!(validate_threads(Some(" 0 ")), Ok(None));
        assert_eq!(validate_threads(Some("")), Ok(None));
        assert_eq!(validate_threads(None), Ok(None));
        assert_eq!(parse_threads(Some("4")), Some(4));
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(invalid_env_rejections(), before, "accepted values must not warn");
    }

    #[test]
    fn invalid_values_warn_and_fall_back() {
        assert_eq!(validate_threads(Some("abc")), Err("abc".to_owned()));
        assert_eq!(validate_threads(Some("-3")), Err("-3".to_owned()));
        assert_eq!(validate_threads(Some("1.5")), Err("1.5".to_owned()));

        let before = invalid_env_rejections();
        assert_eq!(parse_threads(Some("abc")), None);
        assert_eq!(parse_threads(Some("-3")), None);
        assert_eq!(
            invalid_env_rejections(),
            before + 2,
            "each invalid override must be counted, not silently dropped"
        );
        // The fallback still resolves to a usable width.
        assert!(JobPool::new(0).threads() >= 1);
    }
}
