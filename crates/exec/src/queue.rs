//! A persistent, bounded task queue over long-lived worker threads.
//!
//! [`JobPool`](crate::JobPool) is batch-shaped: it spawns scoped workers for
//! one `map` call and joins them before returning. Long-running services
//! (the `nvpim-serve` HTTP front end) need the complementary shape — workers
//! that outlive any single submission, a *bounded* submission queue whose
//! overflow is reported to the caller instead of buffered without limit
//! (backpressure), and a graceful drain that finishes accepted work while
//! rejecting new work.
//!
//! Determinism note: unlike `JobPool::map`, a `TaskQueue` imposes no result
//! ordering — tasks are fire-and-forget closures. Callers that need ordered
//! results keep using `JobPool`; the queue exists for connection/request
//! dispatch where each task owns its own reply channel.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::pool::available_threads;

/// A task: an owned closure executed once on a worker thread.
pub type Task = Box<dyn FnOnce() + Send + 'static>;

/// Error returned by [`TaskQueue::try_submit`] when the pending queue is at
/// capacity (backpressure) or the queue is draining (shutdown).
#[derive(Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The pending queue is full; retry later.
    Full {
        /// The configured queue capacity that was exceeded.
        capacity: usize,
    },
    /// The queue no longer accepts work (draining or dropped).
    Draining,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Full { capacity } => {
                write!(f, "task queue full ({capacity} pending tasks)")
            }
            SubmitError::Draining => f.write_str("task queue is draining"),
        }
    }
}

impl std::error::Error for SubmitError {}

#[derive(Default)]
struct QueueState {
    pending: VecDeque<Task>,
    in_flight: usize,
    accepting: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    /// Signals workers that a task (or shutdown) is available.
    available: Condvar,
    /// Signals waiters that pending + in_flight may have reached zero.
    idle: Condvar,
    capacity: usize,
    panics: AtomicU64,
}

/// A fixed set of persistent worker threads draining a bounded task queue.
///
/// # Examples
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
/// use nvpim_exec::TaskQueue;
///
/// let queue = TaskQueue::new(2, 16);
/// let done = Arc::new(AtomicUsize::new(0));
/// for _ in 0..8 {
///     let done = Arc::clone(&done);
///     queue.try_submit(Box::new(move || {
///         done.fetch_add(1, Ordering::SeqCst);
///     })).unwrap();
/// }
/// queue.drain();
/// assert_eq!(done.load(Ordering::SeqCst), 8);
/// ```
pub struct TaskQueue {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for TaskQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskQueue")
            .field("workers", &self.workers.len())
            .field("capacity", &self.shared.capacity)
            .field("pending", &self.pending())
            .field("in_flight", &self.in_flight())
            .finish()
    }
}

impl TaskQueue {
    /// A queue drained by `workers` threads (`0` = auto: `NVPIM_THREADS`,
    /// else the machine's parallelism) holding at most `capacity` pending
    /// tasks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (a queue that can never accept work).
    #[must_use]
    pub fn new(workers: usize, capacity: usize) -> Self {
        assert!(capacity > 0, "task queue capacity must be positive");
        let workers = if workers == 0 { available_threads() } else { workers };
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                pending: VecDeque::new(),
                in_flight: 0,
                accepting: true,
            }),
            available: Condvar::new(),
            idle: Condvar::new(),
            capacity,
            panics: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("nvpim-task-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn task-queue worker")
            })
            .collect();
        TaskQueue { shared, workers: handles }
    }

    /// Submits a task, failing fast when the pending queue is at capacity
    /// or the queue is draining. Never blocks.
    pub fn try_submit(&self, task: Task) -> Result<(), SubmitError> {
        let mut state = self.shared.state.lock().expect("task queue poisoned");
        if !state.accepting {
            return Err(SubmitError::Draining);
        }
        if state.pending.len() >= self.shared.capacity {
            return Err(SubmitError::Full { capacity: self.shared.capacity });
        }
        state.pending.push_back(task);
        drop(state);
        self.shared.available.notify_one();
        Ok(())
    }

    /// Tasks accepted but not yet started.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.shared.state.lock().expect("task queue poisoned").pending.len()
    }

    /// Tasks currently executing on a worker.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.shared.state.lock().expect("task queue poisoned").in_flight
    }

    /// Maximum number of pending tasks.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Worker thread count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Tasks that panicked (workers survive a panicking task; the panic is
    /// counted here instead of propagated, because there is no caller left
    /// on the submission side to receive it).
    #[must_use]
    pub fn panics(&self) -> u64 {
        self.shared.panics.load(Ordering::Relaxed)
    }

    /// Stops accepting new tasks and blocks until every accepted task has
    /// finished, then joins the workers. Already-pending tasks run to
    /// completion; [`TaskQueue::try_submit`] fails with
    /// [`SubmitError::Draining`] from the moment drain begins.
    pub fn drain(mut self) {
        self.begin_drain();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }

    /// Marks the queue as draining without consuming it (used by `Drop` and
    /// by callers that want to reject new work before blocking on `drain`).
    pub fn begin_drain(&self) {
        let mut state = self.shared.state.lock().expect("task queue poisoned");
        state.accepting = false;
        drop(state);
        self.shared.available.notify_all();
    }

    /// Blocks until no task is pending or in flight (without draining).
    pub fn wait_idle(&self) {
        let mut state = self.shared.state.lock().expect("task queue poisoned");
        while !state.pending.is_empty() || state.in_flight > 0 {
            state = self.shared.idle.wait(state).expect("task queue poisoned");
        }
    }
}

impl Drop for TaskQueue {
    fn drop(&mut self) {
        self.begin_drain();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let task = {
            let mut state = shared.state.lock().expect("task queue poisoned");
            loop {
                if let Some(task) = state.pending.pop_front() {
                    state.in_flight += 1;
                    break task;
                }
                if !state.accepting {
                    return;
                }
                state = shared.available.wait(state).expect("task queue poisoned");
            }
        };
        if catch_unwind(AssertUnwindSafe(task)).is_err() {
            shared.panics.fetch_add(1, Ordering::Relaxed);
        }
        let mut state = shared.state.lock().expect("task queue poisoned");
        state.in_flight -= 1;
        let now_idle = state.pending.is_empty() && state.in_flight == 0;
        drop(state);
        if now_idle {
            shared.idle.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn executes_every_submitted_task() {
        let queue = TaskQueue::new(4, 64);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let done = Arc::clone(&done);
            queue
                .try_submit(Box::new(move || {
                    done.fetch_add(1, Ordering::SeqCst);
                }))
                .unwrap();
        }
        queue.drain();
        assert_eq!(done.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn overflow_is_reported_not_buffered() {
        // One worker stuck on a slow task, capacity 2: the third pending
        // submission must fail fast with `Full`.
        let queue = TaskQueue::new(1, 2);
        let release = Arc::new(AtomicUsize::new(0));
        let gate = Arc::clone(&release);
        queue
            .try_submit(Box::new(move || {
                while gate.load(Ordering::SeqCst) == 0 {
                    std::thread::sleep(Duration::from_millis(1));
                }
            }))
            .unwrap();
        // Wait until the slow task is in flight so capacity counts only
        // truly pending tasks.
        while queue.in_flight() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        queue.try_submit(Box::new(|| {})).unwrap();
        queue.try_submit(Box::new(|| {})).unwrap();
        assert_eq!(queue.try_submit(Box::new(|| {})), Err(SubmitError::Full { capacity: 2 }));
        release.store(1, Ordering::SeqCst);
        queue.drain();
    }

    #[test]
    fn drain_finishes_accepted_work_and_rejects_new() {
        let queue = TaskQueue::new(2, 16);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let done = Arc::clone(&done);
            queue
                .try_submit(Box::new(move || {
                    std::thread::sleep(Duration::from_millis(2));
                    done.fetch_add(1, Ordering::SeqCst);
                }))
                .unwrap();
        }
        queue.begin_drain();
        assert_eq!(queue.try_submit(Box::new(|| {})), Err(SubmitError::Draining));
        queue.drain();
        assert_eq!(done.load(Ordering::SeqCst), 8, "drain must finish accepted tasks");
    }

    #[test]
    fn panicking_task_does_not_kill_the_worker() {
        let queue = TaskQueue::new(1, 16);
        queue.try_submit(Box::new(|| panic!("task exploded"))).unwrap();
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        queue
            .try_submit(Box::new(move || {
                d.fetch_add(1, Ordering::SeqCst);
            }))
            .unwrap();
        queue.wait_idle();
        assert_eq!(done.load(Ordering::SeqCst), 1, "worker must survive the panic");
        assert_eq!(queue.panics(), 1);
        queue.drain();
    }

    #[test]
    fn wait_idle_returns_once_queue_is_empty() {
        let queue = TaskQueue::new(2, 8);
        for _ in 0..4 {
            queue.try_submit(Box::new(|| std::thread::sleep(Duration::from_millis(1)))).unwrap();
        }
        queue.wait_idle();
        assert_eq!(queue.pending(), 0);
        assert_eq!(queue.in_flight(), 0);
    }

    #[test]
    fn zero_workers_resolves_to_environment() {
        let queue = TaskQueue::new(0, 4);
        assert!(queue.workers() >= 1);
        queue.drain();
    }
}
