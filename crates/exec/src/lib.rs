//! # nvpim-exec — deterministic parallel execution for the nvpim stack
//!
//! The paper's headline figures each require simulating a workload under
//! every balancing configuration, architecture style, and re-mapping period
//! — an embarrassingly parallel matrix of completely independent jobs. This
//! crate provides the scale-out machinery, built on nothing but `std`:
//!
//! - [`JobPool`]: a scoped-thread worker pool (`std::thread::scope` plus a
//!   shared work queue) whose width honors
//!   [`std::thread::available_parallelism`] with an `NVPIM_THREADS`
//!   environment override;
//! - [`ParallelRunner`]: fans a job list out across the pool and merges the
//!   results back **in submission order**, so a parallel run is bit-identical
//!   to the serial loop it replaces regardless of worker scheduling;
//! - [`TaskQueue`]: the service-shaped complement — persistent workers over
//!   a *bounded* submission queue with fail-fast overflow (backpressure)
//!   and a graceful drain, used by the `nvpim-serve` HTTP front end.
//!
//! Determinism is the design constraint: every job owns its inputs, no job
//! observes another's timing, and results land in pre-assigned slots. A
//! panicking job propagates to the caller when the scope joins, exactly like
//! a panic in the serial loop.
//!
//! ## Example
//!
//! ```
//! use nvpim_exec::ParallelRunner;
//!
//! let runner = ParallelRunner::new(4);
//! let squares = runner.run((0u64..8).collect(), |x| x * x);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pool;
pub mod queue;
pub mod runner;

pub use pool::{
    available_threads, invalid_env_rejections, machine_parallelism, validate_threads, JobPool,
};
pub use queue::{SubmitError, TaskQueue};
pub use runner::ParallelRunner;
