//! FNV-1a content hashing for the result cache.
//!
//! The cache key must be (a) stable across processes and platforms — a
//! spilled on-disk entry written by one server run is looked up by the next
//! — and (b) cheap over short canonical-JSON strings. FNV-1a over the
//! canonical request bytes satisfies both with ten lines of code; the cache
//! additionally stores the canonical request next to each entry and compares
//! it on lookup, so a (vanishingly unlikely) 64-bit collision degrades to a
//! cache miss, never to a wrong answer.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The 64-bit FNV-1a digest of `bytes`.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The digest rendered as the fixed-width hex token used in cache file
/// names and response `key` fields.
#[must_use]
pub fn key_hex(key: u64) -> String {
    format!("{key:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_fnv1a_vectors() {
        // Reference vectors from the FNV specification.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hex_key_is_fixed_width() {
        assert_eq!(key_hex(0x1), "0000000000000001");
        assert_eq!(key_hex(u64::MAX), "ffffffffffffffff");
    }
}
