//! Per-peer state: circuit breakers, call statistics, and typed outcomes.
//!
//! Each fleet member keeps one [`Peer`] per other member. The breaker
//! protects the *forwarding hot path*: once a peer has failed
//! [`BREAKER_THRESHOLD`] consecutive liveness checks (refused / timed out /
//! connection died — a [`ClientError::Malformed`] reply is a protocol bug
//! and deliberately does not count), calls to it are skipped outright for
//! [`BREAKER_COOLDOWN`], so a dead peer costs one cheap atomic load instead
//! of a connect timeout per request. After the cooldown one trial call is
//! let through (half-open); success closes the breaker, failure re-opens it
//! for another cooldown.
//!
//! [`ClientError::Malformed`]: crate::client::ClientError::Malformed

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use nvpim_obs::Json;

use crate::client::{Client, ClientError, HttpReply};

/// Consecutive liveness failures that open the breaker.
pub const BREAKER_THRESHOLD: u32 = 3;

/// How long an open breaker short-circuits calls before letting one
/// half-open trial through.
pub const BREAKER_COOLDOWN: Duration = Duration::from_secs(1);

/// The breaker's position, for `/fleet` reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls flow normally.
    Closed,
    /// Calls are short-circuited until the cooldown expires.
    Open,
    /// Cooldown expired; the next call is a trial.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase token for JSON documents.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

#[derive(Debug)]
struct Breaker {
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    /// A half-open trial is in flight; concurrent calls keep failing fast
    /// until it reports back, so a dead peer gets exactly one probe per
    /// cooldown instead of a thundering herd.
    trial_in_flight: bool,
}

/// One remote fleet member, from this instance's point of view.
#[derive(Debug)]
pub struct Peer {
    addr: String,
    resolved: SocketAddr,
    client: Client,
    breaker: Mutex<Breaker>,
    /// Successful calls to this peer.
    pub ok_calls: AtomicU64,
    /// Failed calls (liveness failures; malformed replies count here too
    /// for visibility, they just do not move the breaker).
    pub failed_calls: AtomicU64,
    /// Calls skipped because the breaker was open.
    pub short_circuits: AtomicU64,
}

impl Peer {
    /// A peer at `addr` whose calls use the given connect/read timeouts.
    ///
    /// # Errors
    ///
    /// Fails when `addr` is not a resolvable `host:port`.
    pub fn new(addr: &str, timeout: Duration) -> Result<Peer, String> {
        use std::net::ToSocketAddrs as _;
        let resolved = addr
            .to_socket_addrs()
            .map_err(|e| format!("peer address `{addr}` does not resolve: {e}"))?
            .next()
            .ok_or_else(|| format!("peer address `{addr}` resolves to nothing"))?;
        Ok(Peer {
            addr: addr.to_owned(),
            resolved,
            client: Client::new(resolved).with_timeouts(timeout, timeout),
            breaker: Mutex::new(Breaker {
                consecutive_failures: 0,
                opened_at: None,
                trial_in_flight: false,
            }),
            ok_calls: AtomicU64::new(0),
            failed_calls: AtomicU64::new(0),
            short_circuits: AtomicU64::new(0),
        })
    }

    /// The member address as configured (the ring identity).
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The resolved socket address calls actually connect to.
    #[must_use]
    pub fn socket_addr(&self) -> SocketAddr {
        self.resolved
    }

    /// The breaker position right now.
    #[must_use]
    pub fn breaker_state(&self) -> BreakerState {
        let breaker = self.breaker.lock().expect("breaker poisoned");
        match breaker.opened_at {
            None => BreakerState::Closed,
            Some(at) if at.elapsed() >= BREAKER_COOLDOWN => BreakerState::HalfOpen,
            Some(_) => BreakerState::Open,
        }
    }

    /// Issues `POST path` through the breaker. An open breaker fails fast
    /// with `Err(None)`; a real call's failure comes back as `Err(Some(e))`
    /// after the breaker has been updated.
    ///
    /// # Errors
    ///
    /// `Err(None)` when short-circuited, `Err(Some(ClientError))` when the
    /// call itself failed.
    pub fn post_json(
        &self,
        path: &str,
        body: &str,
        headers: &[(&str, &str)],
    ) -> Result<HttpReply, Option<ClientError>> {
        if !self.admit() {
            self.short_circuits.fetch_add(1, Ordering::Relaxed);
            return Err(None);
        }
        match self.client.post_json_with_headers(path, body, headers) {
            Ok(reply) => {
                self.record_success();
                Ok(reply)
            }
            Err(e) => {
                self.record_failure(&e);
                Err(Some(e))
            }
        }
    }

    /// Whether a call may proceed: breaker closed, or half-open with this
    /// caller claiming the single trial slot.
    fn admit(&self) -> bool {
        let mut breaker = self.breaker.lock().expect("breaker poisoned");
        match breaker.opened_at {
            None => true,
            Some(at) if at.elapsed() >= BREAKER_COOLDOWN && !breaker.trial_in_flight => {
                breaker.trial_in_flight = true;
                true
            }
            Some(_) => false,
        }
    }

    fn record_success(&self) {
        self.ok_calls.fetch_add(1, Ordering::Relaxed);
        let mut breaker = self.breaker.lock().expect("breaker poisoned");
        breaker.consecutive_failures = 0;
        breaker.opened_at = None;
        breaker.trial_in_flight = false;
    }

    fn record_failure(&self, error: &ClientError) {
        self.failed_calls.fetch_add(1, Ordering::Relaxed);
        if !error.is_liveness() {
            // A malformed reply means the peer is *up* and talking — close
            // out a trial without moving the failure count.
            let mut breaker = self.breaker.lock().expect("breaker poisoned");
            breaker.trial_in_flight = false;
            return;
        }
        let mut breaker = self.breaker.lock().expect("breaker poisoned");
        breaker.trial_in_flight = false;
        breaker.consecutive_failures = breaker.consecutive_failures.saturating_add(1);
        if breaker.consecutive_failures >= BREAKER_THRESHOLD || breaker.opened_at.is_some() {
            // Threshold reached, or a failed half-open trial: (re-)open.
            breaker.opened_at = Some(Instant::now());
        }
    }

    /// The peer's state as a `/fleet` JSON fragment.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::object()
            .with("addr", self.addr.as_str())
            .with("breaker", self.breaker_state().label())
            .with("ok_calls", self.ok_calls.load(Ordering::Relaxed))
            .with("failed_calls", self.failed_calls.load(Ordering::Relaxed))
            .with("short_circuits", self.short_circuits.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn dead_peer() -> Peer {
        // Bind-then-drop: the port is real but nothing listens.
        let addr = TcpListener::bind("127.0.0.1:0").unwrap().local_addr().unwrap();
        Peer::new(&addr.to_string(), Duration::from_millis(200)).unwrap()
    }

    #[test]
    fn bad_addresses_fail_at_construction() {
        assert!(Peer::new("not an address", Duration::from_secs(1)).is_err());
    }

    #[test]
    fn breaker_opens_after_threshold_and_short_circuits() {
        let peer = dead_peer();
        assert_eq!(peer.breaker_state(), BreakerState::Closed);
        for _ in 0..BREAKER_THRESHOLD {
            let err = peer.post_json("/x", "{}", &[]).expect_err("peer is dead");
            assert!(err.is_some(), "real calls report the client error");
        }
        assert_eq!(peer.breaker_state(), BreakerState::Open);
        let err = peer.post_json("/x", "{}", &[]).expect_err("breaker is open");
        assert!(err.is_none(), "open breaker short-circuits without a connect");
        assert_eq!(peer.short_circuits.load(Ordering::Relaxed), 1);
        assert_eq!(peer.failed_calls.load(Ordering::Relaxed), u64::from(BREAKER_THRESHOLD));
    }

    #[test]
    fn half_open_trial_failure_reopens_for_another_cooldown() {
        let peer = dead_peer();
        for _ in 0..BREAKER_THRESHOLD {
            let _ = peer.post_json("/x", "{}", &[]);
        }
        assert_eq!(peer.breaker_state(), BreakerState::Open);
        // Simulate the cooldown having elapsed by rewinding opened_at.
        {
            let mut b = peer.breaker.lock().unwrap();
            b.opened_at = Some(Instant::now() - BREAKER_COOLDOWN * 2);
        }
        assert_eq!(peer.breaker_state(), BreakerState::HalfOpen);
        let err = peer.post_json("/x", "{}", &[]).expect_err("trial fails too");
        assert!(err.is_some(), "the half-open trial is a real call");
        assert_eq!(peer.breaker_state(), BreakerState::Open, "failed trial re-opens");
    }

    #[test]
    fn success_closes_the_breaker_and_resets_the_count() {
        // A live listener that answers minimal HTTP.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            use std::io::{Read as _, Write as _};
            let (mut s, _) = listener.accept().unwrap();
            let mut scratch = [0u8; 2048];
            let _ = s.read(&mut scratch);
            let _ = s.write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\n{}");
        });
        let peer = Peer::new(&addr.to_string(), Duration::from_secs(2)).unwrap();
        // Two failures first (below threshold), against a port that cannot
        // answer — use a dead address by... the listener IS live, so fake
        // the count directly.
        {
            let mut b = peer.breaker.lock().unwrap();
            b.consecutive_failures = BREAKER_THRESHOLD - 1;
        }
        let reply = peer.post_json("/x", "{}", &[]).expect("live peer answers");
        assert_eq!(reply.status, 200);
        assert_eq!(peer.breaker.lock().unwrap().consecutive_failures, 0);
        assert_eq!(peer.breaker_state(), BreakerState::Closed);
        server.join().unwrap();
    }
}
