//! The simulation service: accept loop, bounded dispatch, endpoints.
//!
//! Production behaviors, in one place:
//!
//! * **Backpressure** — connections are dispatched onto a bounded
//!   [`TaskQueue`]; when it is full the accept loop answers `429` with a
//!   `Retry-After` header inline instead of queueing unboundedly.
//! * **Timeouts** — `/simulate` runs each job on its own thread and waits
//!   with `recv_timeout`; a deadline miss answers `504` while the detached
//!   job finishes and still populates the cache (the work is not lost).
//! * **Graceful drain** — `POST /shutdown` flips a draining flag: new
//!   connections get `503`, in-flight requests complete, and the accept
//!   loop exits once the queue is idle.
//! * **Observability** — per-endpoint request counters and latency
//!   histograms (cache hit/miss labeled for `/simulate`) feed the server
//!   [`Observer`]; each executed simulation runs against a private
//!   collecting observer that is absorbed afterwards, and (when a cache
//!   directory is configured) leaves a [`RunManifest`] on disk next to the
//!   spilled cache entries. Metrics expose as JSON (`GET /metrics`) or
//!   Prometheus text (`GET /metrics?format=prometheus`).
//! * **Tracing** — every request runs under a `serve.request` span in a
//!   process-wide [`TraceRecorder`]. Clients propagate context with an
//!   `X-Trace-Id` header (minted when absent, echoed on every response)
//!   and fetch the Chrome trace-event JSON back via `GET /trace/<id>`.

use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::str::FromStr as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use nvpim_core::{AnalyticWearEngine, EnduranceSimulator};
use nvpim_exec::{JobPool, SubmitError, TaskQueue};
use nvpim_obs::{
    Event, EventSink as _, Json, JsonlSink, Observer, RunManifest, TraceContext, TraceId,
    TraceRecorder,
};

use crate::cache::ResultCache;
use crate::fleet::{Fleet, FleetConfig, Route};
use crate::hash::key_hex;
use crate::http::{self, HttpRequest};
use crate::request::SimRequest;
use crate::wire;

/// Maximum number of cells accepted by one `/batch` request.
pub const MAX_BATCH_CELLS: usize = 1024;

/// Tunables for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` asks the OS for a free port.
    pub addr: String,
    /// Worker threads serving requests (`0` = auto-size from the
    /// environment, like [`JobPool::from_env`]).
    pub workers: usize,
    /// Bounded depth of the pending-connection queue; overflow answers
    /// `429`.
    pub queue_depth: usize,
    /// Default per-request wall-clock budget for `/simulate`, in
    /// milliseconds (`0` = unlimited). Requests may lower it with their own
    /// `timeout_ms`.
    pub timeout_ms: u64,
    /// In-memory result-cache capacity (entries).
    pub cache_entries: usize,
    /// Directory for the on-disk cache spill, run manifests, and the JSONL
    /// event log. `None` keeps everything in memory.
    pub cache_dir: Option<PathBuf>,
    /// Value of the `Retry-After` header on `429` responses, in seconds.
    pub retry_after_s: u64,
    /// Byte budget for the on-disk cache spill (0 = unlimited); exceeding
    /// it compacts the spill directory oldest-first.
    pub cache_max_bytes: u64,
    /// Age limit for spilled cache entries, in seconds (0 = unlimited).
    pub cache_max_age_s: u64,
    /// Fleet membership; `None` runs a plain single-node server.
    pub fleet: Option<FleetConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            queue_depth: 64,
            timeout_ms: 30_000,
            cache_entries: 256,
            cache_dir: None,
            retry_after_s: 1,
            cache_max_bytes: 0,
            cache_max_age_s: 0,
            fleet: None,
        }
    }
}

/// Shared server state.
struct ServeState {
    cache: Mutex<ResultCache>,
    observer: Observer,
    tracer: Arc<TraceRecorder>,
    started: Instant,
    in_flight: AtomicU64,
    draining: AtomicBool,
    timeout_ms: u64,
    retry_after_s: u64,
    workers: usize,
    queue_depth: usize,
    manifest_dir: Option<PathBuf>,
    /// Present when this instance is a fleet member.
    fleet: Option<Arc<Fleet>>,
}

impl ServeState {
    fn count(&self, name: &str) {
        self.observer.record(&Event::CounterAdd { name, delta: 1 });
    }

    fn observe(&self, name: &str, value: u64) {
        self.observer.record(&Event::Observe { name, value });
    }

    /// Refreshes the point-in-time server gauges so a metrics snapshot
    /// (JSON or Prometheus) always carries current values.
    fn refresh_gauges(&self) {
        let metrics = self.observer.metrics();
        metrics.gauge("serve.uptime_s").set(self.started.elapsed().as_secs_f64());
        metrics.gauge("serve.in_flight").set(self.in_flight.load(Ordering::SeqCst) as f64);
        metrics.gauge("serve.workers").set(self.workers as f64);
        metrics.gauge("serve.queue_depth").set(self.queue_depth as f64);
        if let Some(fleet) = &self.fleet {
            let up = fleet.gossip().members().iter().filter(|m| m.up).count();
            metrics.gauge("fleet.peers_up").set(up as f64);
            metrics.gauge("fleet.members").set((fleet.ring().members().len()) as f64);
        }
        // Artifact-store size and traffic (`artifacts.*`), so `/metrics`
        // shows how much of the batch path's work is being shared.
        nvpim_core::artifacts::publish_gauges(&self.observer);
    }
}

/// Per-request context threaded through the route handlers: the adopted
/// (or minted) trace id pre-rendered for the `X-Trace-Id` echo, the span
/// to parent child spans under, and the request arrival time.
struct ReqCtx {
    hex: String,
    span: TraceContext,
    started: Instant,
}

/// The running service.
pub struct Server;

/// Handle to a started server: its bound address, a shutdown switch, and a
/// join point.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServeState>,
    accept_thread: std::thread::JoinHandle<()>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle").field("addr", &self.addr).finish_non_exhaustive()
    }
}

impl ServerHandle {
    /// The address the server actually bound (resolves port `0`).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiates a graceful drain, exactly like `POST /shutdown`: in-flight
    /// requests finish, new connections are refused with `503`.
    pub fn request_shutdown(&self) {
        self.state.draining.store(true, Ordering::SeqCst);
    }

    /// Waits for the accept loop to exit (after a drain was requested).
    pub fn join(self) {
        self.accept_thread.join().expect("accept loop panicked");
    }
}

impl Server {
    /// Binds, spawns the accept loop, and returns a handle.
    ///
    /// # Errors
    ///
    /// Fails if the listen address cannot be bound.
    pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let observer = match &config.cache_dir {
            Some(dir) => {
                std::fs::create_dir_all(dir)?;
                let file = std::fs::File::create(dir.join("events.jsonl"))?;
                Observer::new(JsonlSink::new(std::io::BufWriter::new(file)))
            }
            None => Observer::collecting(),
        };
        let tracer = Arc::new(TraceRecorder::new());
        let observer = observer.with_tracer(Arc::clone(&tracer));
        let workers = JobPool::new(config.workers).threads();
        let manifest_dir = config.cache_dir.as_ref().map(|d| d.join("manifests"));
        if let Some(dir) = &manifest_dir {
            std::fs::create_dir_all(dir)?;
        }
        let fleet = match &config.fleet {
            Some(fleet_config) => {
                Some(Arc::new(Fleet::new(fleet_config.clone()).map_err(|message| {
                    std::io::Error::new(std::io::ErrorKind::InvalidInput, message)
                })?))
            }
            None => None,
        };
        let cache = ResultCache::new(config.cache_entries, config.cache_dir.clone())
            .with_spill_limits(config.cache_max_bytes, config.cache_max_age_s);
        let state = Arc::new(ServeState {
            cache: Mutex::new(cache),
            observer,
            tracer,
            started: Instant::now(),
            in_flight: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            timeout_ms: config.timeout_ms,
            retry_after_s: config.retry_after_s,
            workers,
            queue_depth: config.queue_depth,
            manifest_dir,
            fleet,
        });

        if let Some(fleet) = &state.fleet {
            if fleet.config().gossip_interval_ms > 0 {
                let gossip_state = Arc::clone(&state);
                let interval = Duration::from_millis(fleet.config().gossip_interval_ms);
                std::thread::Builder::new()
                    .name("nvpim-serve-gossip".into())
                    .spawn(move || {
                        while !gossip_state.draining.load(Ordering::SeqCst) {
                            gossip_round(&gossip_state);
                            std::thread::sleep(interval);
                        }
                    })
                    .expect("spawn gossip thread");
            }
        }

        let loop_state = Arc::clone(&state);
        let queue_depth = config.queue_depth;
        let accept_thread = std::thread::Builder::new()
            .name("nvpim-serve-accept".into())
            .spawn(move || accept_loop(&listener, &loop_state, workers, queue_depth))
            .expect("spawn accept loop");

        Ok(ServerHandle { addr, state, accept_thread })
    }
}

/// Idle-poll backoff bounds for the non-blocking accept loop. After serving
/// a connection the loop polls again almost immediately (new work tends to
/// arrive in bursts, and a request/response turnaround is often well under
/// a millisecond); each empty poll doubles the sleep up to the cap so a
/// quiet server still costs ~zero CPU. The cap bounds the worst-case
/// latency an after-idle request pays before it is even accepted — at
/// 500 µs a fully idle server burns ~2000 accept polls (syscalls) per
/// second, well under 1% of a core, while keeping cache-hit round-trips
/// dominated by useful work instead of the poll sleep.
const ACCEPT_BACKOFF_MIN: Duration = Duration::from_micros(50);
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_micros(500);

fn accept_loop(
    listener: &TcpListener,
    state: &Arc<ServeState>,
    workers: usize,
    queue_depth: usize,
) {
    let queue = TaskQueue::new(workers, queue_depth);
    let mut backoff = ACCEPT_BACKOFF_MIN;
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                backoff = ACCEPT_BACKOFF_MIN;
                if state.draining.load(Ordering::SeqCst) {
                    refuse(stream, 503, &[], "server is draining");
                    continue;
                }
                // Only this thread submits, so pending() cannot grow between
                // the check and the submit — the check is race-free and lets
                // the 429 be written while we still own the stream.
                if queue.pending() >= queue.capacity() {
                    state.count("serve.rejected.backpressure");
                    let retry = state.retry_after_s.to_string();
                    refuse(
                        stream,
                        429,
                        &[("Retry-After", retry.as_str())],
                        "request queue is full, retry shortly",
                    );
                    continue;
                }
                let task_state = Arc::clone(state);
                if let Err(SubmitError::Full { .. } | SubmitError::Draining) =
                    queue.try_submit(Box::new(move || handle_connection(stream, task_state)))
                {
                    // A drain raced in; the connection drops with the task.
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if state.draining.load(Ordering::SeqCst)
                    && queue.pending() == 0
                    && queue.in_flight() == 0
                {
                    break;
                }
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(ACCEPT_BACKOFF_MAX);
            }
            Err(e) => {
                eprintln!("nvpim-serve: accept error: {e}");
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
    queue.drain();
    state.observer.flush();
}

/// Writes a terse error response on a connection the server will not
/// service, ignoring I/O failures (the peer may already be gone).
///
/// The request was never read, so the socket must be drained before the
/// drop: closing with unread bytes in the receive buffer makes the kernel
/// send RST, which discards the response on the peer's side. The drain is
/// bounded by a short read timeout so a slow peer cannot stall the accept
/// loop for long.
fn refuse(mut stream: TcpStream, status: u16, extra: &[(&str, &str)], message: &str) {
    let body = Json::object().with("error", message).render();
    let _ = http::write_response(&mut stream, status, extra, "application/json", &body);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut scratch = [0u8; 1024];
    while matches!(std::io::Read::read(&mut stream, &mut scratch), Ok(n) if n > 0) {}
}

fn handle_connection(mut stream: TcpStream, state: Arc<ServeState>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let request = match http::read_request(&mut stream) {
        Ok(request) => request,
        Err(Ok(http_error)) => {
            refuse(stream, http_error.status, &[], &http_error.message);
            return;
        }
        Err(Err(_io)) => return,
    };
    let started = Instant::now();
    state.in_flight.fetch_add(1, Ordering::SeqCst);
    state.count("serve.requests");
    // Adopt the client's trace id (bad values are treated as absent rather
    // than rejected — tracing must never fail a request) or mint one.
    let trace = request
        .header("x-trace-id")
        .and_then(TraceId::from_hex)
        .unwrap_or_else(|| state.tracer.new_trace_id());
    let mut span = state.tracer.adopt_trace(trace, "serve.request");
    span.attr_str("method", &request.method);
    span.attr_str("path", &request.path);
    let ctx = ReqCtx { hex: trace.to_hex(), span: span.context(), started };
    let endpoint = route(&mut stream, &request, &state, &ctx);
    span.attr_str("endpoint", endpoint);
    drop(span);
    state.count(&format!("serve.requests.{endpoint}"));
    let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    state.observe(&format!("serve.latency_us.{endpoint}"), micros);
    state.in_flight.fetch_sub(1, Ordering::SeqCst);
}

/// Dispatches one parsed request and returns the endpoint label used in
/// metric names.
fn route(
    stream: &mut TcpStream,
    request: &HttpRequest,
    state: &Arc<ServeState>,
    ctx: &ReqCtx,
) -> &'static str {
    let th = [("X-Trace-Id", ctx.hex.as_str())];
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/") => {
            respond_json(stream, 200, &th, &index_doc());
            "index"
        }
        ("GET", "/health") => {
            let doc = Json::object()
                .with("status", "ok")
                .with("draining", state.draining.load(Ordering::SeqCst));
            respond_json(stream, 200, &th, &doc);
            "health"
        }
        ("GET", "/metrics") => {
            state.refresh_gauges();
            match request.query_param("format") {
                None | Some("json") => respond_json(stream, 200, &th, &metrics_doc(state)),
                Some("prometheus") => {
                    let body = nvpim_obs::prom::render(&state.observer.snapshot());
                    let _ =
                        http::write_response(stream, 200, &th, "text/plain; version=0.0.4", &body);
                }
                Some(other) => respond_error(
                    stream,
                    400,
                    &th,
                    &format!("unknown metrics format `{other}` (expected json or prometheus)"),
                ),
            }
            "metrics"
        }
        ("GET", path) if path.strip_prefix("/trace/").is_some() => {
            let hex = path.strip_prefix("/trace/").unwrap_or_default();
            match TraceId::from_hex(hex) {
                None => respond_error(
                    stream,
                    400,
                    &th,
                    "bad trace id (expected 1-16 hex digits, nonzero)",
                ),
                Some(id) if state.tracer.spans_for(id).is_empty() => respond_error(
                    stream,
                    404,
                    &th,
                    "no spans recorded for this trace (finished long ago, or evicted)",
                ),
                Some(id) => {
                    let body = state.tracer.chrome_trace_for(id);
                    let _ = http::write_response(stream, 200, &th, "application/json", &body);
                }
            }
            "trace"
        }
        ("POST", "/simulate") => {
            simulate(stream, request, state, ctx);
            "simulate"
        }
        ("POST", "/batch") => {
            batch(stream, request, state, ctx);
            "batch"
        }
        ("GET", "/fleet") => {
            match &state.fleet {
                None => respond_error(
                    stream,
                    404,
                    &th,
                    "this instance is not part of a fleet (start with --peers)",
                ),
                Some(fleet) => respond_json(stream, 200, &th, &fleet.to_json()),
            }
            "fleet"
        }
        ("POST", "/fleet/gossip") => {
            fleet_gossip(stream, request, state, ctx);
            "fleet_gossip"
        }
        ("POST", "/fleet/replicate") => {
            fleet_replicate(stream, request, state, ctx);
            "fleet_replicate"
        }
        ("POST", "/shutdown") => {
            state.draining.store(true, Ordering::SeqCst);
            respond_json(stream, 200, &th, &Json::object().with("status", "draining"));
            "shutdown"
        }
        (
            _,
            "/" | "/health" | "/metrics" | "/simulate" | "/batch" | "/shutdown" | "/fleet"
            | "/fleet/gossip" | "/fleet/replicate",
        ) => {
            respond_error(stream, 405, &th, "method not allowed for this path");
            "method_not_allowed"
        }
        (_, path) if path.starts_with("/trace/") => {
            respond_error(stream, 405, &th, "method not allowed for this path");
            "method_not_allowed"
        }
        _ => {
            respond_error(stream, 404, &th, "no such endpoint");
            "not_found"
        }
    }
}

fn index_doc() -> Json {
    Json::object().with("service", "nvpim-serve").with("schema", wire::RESULT_SCHEMA).with(
        "endpoints",
        vec![
            Json::from("GET /"),
            Json::from("GET /health"),
            Json::from("GET /metrics"),
            Json::from("GET /metrics?format=prometheus"),
            Json::from("GET /trace/<id>"),
            Json::from("POST /simulate"),
            Json::from("POST /batch"),
            Json::from("GET /fleet"),
            Json::from("POST /fleet/gossip"),
            Json::from("POST /fleet/replicate"),
            Json::from("POST /shutdown"),
        ],
    )
}

fn metrics_doc(state: &ServeState) -> Json {
    let cache_stats = state.cache.lock().expect("cache poisoned").stats();
    let mut serve = Json::object()
        .with("cache", cache_stats.to_json())
        .with("draining", state.draining.load(Ordering::SeqCst))
        .with("in_flight", state.in_flight.load(Ordering::SeqCst))
        .with("queue_depth", state.queue_depth)
        .with("uptime_s", Json::Num(state.started.elapsed().as_secs_f64()))
        .with("version", env!("CARGO_PKG_VERSION"))
        .with("workers", state.workers);
    if let Some(fleet) = &state.fleet {
        serve = serve.with("fleet", fleet.to_json());
    }
    Json::object().with("serve", serve).with("metrics", state.observer.snapshot().to_json())
}

fn respond_json(stream: &mut TcpStream, status: u16, extra: &[(&str, &str)], doc: &Json) {
    let _ = http::write_response(stream, status, extra, "application/json", &doc.render());
}

fn respond_error(stream: &mut TcpStream, status: u16, extra: &[(&str, &str)], message: &str) {
    respond_json(stream, status, extra, &Json::object().with("error", message));
}

/// Splices one extra header into a pre-rendered response, right before the
/// blank line that ends the head. Cache hits serve bytes rendered at insert
/// time; the per-request `X-Trace-Id` echo is the only part that differs.
fn splice_header(mut response: Vec<u8>, name: &str, value: &str) -> Vec<u8> {
    if let Some(pos) = response.windows(4).position(|w| w == b"\r\n\r\n") {
        let line = format!("{name}: {value}\r\n");
        response.splice(pos + 2..pos + 2, line.into_bytes());
    }
    response
}

/// `POST /simulate`: cache lookup, then — in fleet mode — the routing
/// ladder (forward to the owner, probe replicas, fall back to a local
/// compute), then bounded-time execution.
fn simulate(stream: &mut TcpStream, request: &HttpRequest, state: &Arc<ServeState>, ctx: &ReqCtx) {
    let th = [("X-Trace-Id", ctx.hex.as_str())];
    let text = match request.body_text() {
        Ok(text) => text,
        Err(e) => return respond_error(stream, e.status, &th, &e.message),
    };
    let sim_request = match SimRequest::from_str(text) {
        Ok(r) => r,
        Err(e) => return respond_error(stream, 400, &th, &e.message),
    };
    let key = sim_request.cache_key();
    let canonical = sim_request.canonical_text();
    // Loop guard: forwarded requests are single-hop by construction, so the
    // only legitimate value is "1". Anything else is a forwarding loop or a
    // forged header — reject rather than amplify.
    let hop = request.header("x-fleet-hop").map(str::to_owned);
    if let Some(hop) = &hop {
        if hop != "1" {
            if let Some(fleet) = &state.fleet {
                fleet.counters.loop_rejected.fetch_add(1, Ordering::Relaxed);
            }
            state.count("fleet.loop_rejected");
            return respond_error(
                stream,
                400,
                &th,
                "X-Fleet-Hop must be 1: fleet forwarding is single-hop",
            );
        }
    }
    let probe = request.header("x-fleet-probe").is_some();
    // Hits serve the response bytes pre-rendered at insert time: one buffer
    // clone under the lock, one write, no formatting beyond the trace echo.
    let cached = state.cache.lock().expect("cache poisoned").get_response(key, &canonical);
    if let Some(response) = cached {
        state.count("serve.cache.hits");
        let mut response = splice_header(response, "X-Trace-Id", &ctx.hex);
        if state.fleet.is_some() {
            response = splice_header(response, "X-Fleet-Hops", "0");
        }
        let _ = stream.write_all(&response).and_then(|()| stream.flush());
        let micros = u64::try_from(ctx.started.elapsed().as_micros()).unwrap_or(u64::MAX);
        state.observe("serve.latency_us.simulate|cache=hit", micros);
        if let Some(fleet) = &state.fleet {
            // Owner-side hot tracking: replicate once the hit count crosses
            // the threshold. Probes and forwarded hits count too — they are
            // real demand for this key.
            if fleet.owns(key) && fleet.note_owned_hit(key) {
                spawn_replication(state, key, canonical);
            }
        }
        return;
    }
    if probe {
        // Cache-only lookup on behalf of another member: a miss answers 404
        // instead of computing, so a probing peer never makes this node do
        // the owner's work.
        state.count("fleet.probe_misses");
        return respond_error(stream, 404, &th, "replica does not hold this entry");
    }
    state.count("serve.cache.misses");
    if hop.is_none() {
        if let Some(fleet) = &state.fleet {
            if let Route::Forward(owner) = fleet.route(key) {
                if fleet_remote_answer(stream, state, fleet, &owner, key, &canonical, ctx) {
                    return;
                }
                // Every remote option failed; compute here so the request
                // still gets its (byte-identical) answer. The local insert
                // below warms this node for the next failover too.
                fleet.counters.fallback_local.fetch_add(1, Ordering::Relaxed);
                state.count("fleet.fallback_local");
            }
        }
    }

    let timeout_ms = sim_request.timeout_ms.unwrap_or(state.timeout_ms);
    let (tx, rx) = mpsc::channel::<Result<String, String>>();
    let job_state = Arc::clone(state);
    let parent = ctx.span;
    std::thread::Builder::new()
        .name("nvpim-serve-sim".into())
        .spawn(move || {
            let outcome = execute(&sim_request, &job_state, Some(parent));
            // The receiver may have timed out and gone away; the cache
            // insert above already preserved the work.
            let _ = tx.send(outcome);
        })
        .expect("spawn simulation thread");

    let outcome = if timeout_ms == 0 {
        rx.recv().map_err(|_| mpsc::RecvTimeoutError::Disconnected)
    } else {
        rx.recv_timeout(Duration::from_millis(timeout_ms))
    };
    match outcome {
        Ok(Ok(body)) => {
            let mut headers = vec![("X-Cache", "miss"), ("X-Trace-Id", ctx.hex.as_str())];
            if state.fleet.is_some() {
                headers.push(("X-Fleet-Hops", "0"));
            }
            let _ = http::write_response(stream, 200, &headers, "application/json", &body);
            let micros = u64::try_from(ctx.started.elapsed().as_micros()).unwrap_or(u64::MAX);
            state.observe("serve.latency_us.simulate|cache=miss", micros);
        }
        Ok(Err(message)) => respond_error(stream, 400, &th, &message),
        Err(mpsc::RecvTimeoutError::Timeout) => {
            state.count("serve.timeouts");
            respond_error(stream, 504, &th, "simulation exceeded its time budget");
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            respond_error(stream, 500, &th, "simulation worker vanished");
        }
    }
}

/// Where a remotely served answer came from.
enum RemoteAnswer {
    /// The key's ring owner answered; `cache` is its `X-Cache` header.
    Owner { cache: String, body: String },
    /// The owner was unreachable; a replica served its cached copy.
    Replica { addr: String, body: String },
}

/// Tries to answer a non-owned key remotely: the owner first (one capped
/// retry on a liveness failure), then cache-only probes of the replica
/// set. `None` means every remote option failed and the caller should
/// compute locally — the fleet never does worse than a single node.
fn fleet_fetch_remote(
    state: &ServeState,
    fleet: &Fleet,
    owner: &str,
    key: u64,
    canonical: &str,
    ctx: &ReqCtx,
) -> Option<RemoteAnswer> {
    let mut span = state.tracer.span(ctx.span, "fleet.forward");
    span.attr_str("owner", owner);
    span.attr_str("key", &key_hex(key));
    let forward_headers = [("X-Fleet-Hop", "1"), ("X-Trace-Id", ctx.hex.as_str())];
    if let Some(peer) = fleet.peer(owner) {
        // Two attempts: a transient connect failure (owner mid-restart, a
        // dropped SYN) deserves one retry; anything slower falls through to
        // the replicas rather than stalling the caller further.
        for _attempt in 0..2 {
            let call_started = Instant::now();
            match peer.post_json("/simulate", canonical, &forward_headers) {
                Ok(reply) => {
                    let micros =
                        u64::try_from(call_started.elapsed().as_micros()).unwrap_or(u64::MAX);
                    state.observe(&format!("fleet.peer_latency_us|peer={owner}"), micros);
                    if reply.status == 200 {
                        fleet.counters.forwarded.fetch_add(1, Ordering::Relaxed);
                        state.count("fleet.forwarded");
                        span.attr_str("outcome", "forwarded");
                        let cache = reply.header("x-cache").unwrap_or("miss").to_owned();
                        return Some(RemoteAnswer::Owner { cache, body: reply.text() });
                    }
                    // The owner is up but refusing (draining, backpressured,
                    // timed out internally): replicas or a local compute will
                    // serve this request better than relaying the refusal.
                    break;
                }
                Err(None) => break, // breaker open: skip straight to replicas
                Err(Some(e)) => {
                    state.count(&format!("fleet.peer_errors|kind={}", e.kind()));
                    if !e.is_liveness() {
                        break;
                    }
                    fleet.gossip().mark_unreachable(owner);
                }
            }
        }
    }
    let probe_headers =
        [("X-Fleet-Hop", "1"), ("X-Fleet-Probe", "1"), ("X-Trace-Id", ctx.hex.as_str())];
    for replica in fleet.replica_peers(key) {
        let call_started = Instant::now();
        match replica.post_json("/simulate", canonical, &probe_headers) {
            Ok(reply) => {
                let micros = u64::try_from(call_started.elapsed().as_micros()).unwrap_or(u64::MAX);
                state.observe(&format!("fleet.peer_latency_us|peer={}", replica.addr()), micros);
                if reply.status == 200 {
                    fleet.counters.replica_hits.fetch_add(1, Ordering::Relaxed);
                    state.count("fleet.replica_hits");
                    span.attr_str("outcome", "replica_hit");
                    span.attr_str("replica", replica.addr());
                    return Some(RemoteAnswer::Replica {
                        addr: replica.addr().to_owned(),
                        body: reply.text(),
                    });
                }
                // 404: this replica has not received (or has evicted) the
                // entry — try the next one.
            }
            Err(None) => {}
            Err(Some(e)) => {
                state.count(&format!("fleet.peer_errors|kind={}", e.kind()));
                if e.is_liveness() {
                    fleet.gossip().mark_unreachable(replica.addr());
                }
            }
        }
    }
    span.attr_str("outcome", "fallback_local");
    None
}

/// The `/simulate` half of remote answering: fetches and writes the
/// response. Returns `false` when the caller must compute locally.
fn fleet_remote_answer(
    stream: &mut TcpStream,
    state: &ServeState,
    fleet: &Fleet,
    owner: &str,
    key: u64,
    canonical: &str,
    ctx: &ReqCtx,
) -> bool {
    match fleet_fetch_remote(state, fleet, owner, key, canonical, ctx) {
        Some(RemoteAnswer::Owner { cache, body }) => {
            let _ = http::write_response(
                stream,
                200,
                &[
                    ("X-Cache", cache.as_str()),
                    ("X-Fleet-Hops", "1"),
                    ("X-Fleet-Owner", owner),
                    ("X-Trace-Id", ctx.hex.as_str()),
                ],
                "application/json",
                &body,
            );
            let micros = u64::try_from(ctx.started.elapsed().as_micros()).unwrap_or(u64::MAX);
            state.observe("serve.latency_us.simulate|cache=forward", micros);
            true
        }
        Some(RemoteAnswer::Replica { addr, body }) => {
            let _ = http::write_response(
                stream,
                200,
                &[
                    ("X-Cache", "hit"),
                    ("X-Fleet-Hops", "1"),
                    ("X-Fleet-Replica", addr.as_str()),
                    ("X-Trace-Id", ctx.hex.as_str()),
                ],
                "application/json",
                &body,
            );
            let micros = u64::try_from(ctx.started.elapsed().as_micros()).unwrap_or(u64::MAX);
            state.observe("serve.latency_us.simulate|cache=replica", micros);
            true
        }
        None => false,
    }
}

/// Pushes a hot entry to its ring successors on a detached thread (the
/// serving request never waits on replication I/O).
fn spawn_replication(state: &Arc<ServeState>, key: u64, canonical: String) {
    let Some(fleet) = state.fleet.clone() else { return };
    let state = Arc::clone(state);
    let spawned =
        std::thread::Builder::new().name("nvpim-serve-replicate".into()).spawn(move || {
            // Fetch the body now, off the hit path.
            let body = state.cache.lock().expect("cache poisoned").get(key, &canonical);
            let Some(body) = body else { return };
            let request_doc = match nvpim_obs::json::parse(&canonical) {
                Ok(doc) => doc,
                Err(_) => return,
            };
            let doc =
                Json::object().with("request", request_doc).with("body", body.as_str()).render();
            for peer in fleet.replica_peers(key) {
                match peer.post_json("/fleet/replicate", &doc, &[]) {
                    Ok(reply) if reply.status == 200 => {
                        fleet.counters.replicated.fetch_add(1, Ordering::Relaxed);
                        state.count("fleet.replicated");
                    }
                    Ok(_) | Err(None) => {}
                    Err(Some(e)) => {
                        if e.is_liveness() {
                            fleet.gossip().mark_unreachable(peer.addr());
                        }
                    }
                }
            }
        });
    if let Err(e) = spawned {
        eprintln!("nvpim-serve: replication thread spawn failed: {e}");
    }
}

/// One round of the gossip driver: advance the local heartbeat, exchange
/// views with the next peer (round-robin), and merge whatever it knows.
fn gossip_round(state: &Arc<ServeState>) {
    let Some(fleet) = &state.fleet else { return };
    fleet.gossip().tick();
    let Some(peer) = fleet.next_gossip_peer() else { return };
    let doc = fleet.gossip().local_doc().render();
    match peer.post_json("/fleet/gossip", &doc, &[]) {
        Ok(reply) if reply.status == 200 => {
            if let Ok(view) = reply.json() {
                fleet.gossip().merge(&view);
            }
            fleet.counters.gossip_rounds.fetch_add(1, Ordering::Relaxed);
            state.count("fleet.gossip.rounds");
        }
        Ok(_) | Err(None) => {}
        Err(Some(e)) => {
            state.count("fleet.gossip.failures");
            if e.is_liveness() {
                fleet.gossip().mark_unreachable(peer.addr());
            }
        }
    }
}

/// `POST /fleet/gossip`: merge the sender's view, answer with ours — one
/// round trip moves both sides forward.
fn fleet_gossip(
    stream: &mut TcpStream,
    request: &HttpRequest,
    state: &Arc<ServeState>,
    ctx: &ReqCtx,
) {
    let th = [("X-Trace-Id", ctx.hex.as_str())];
    let Some(fleet) = &state.fleet else {
        return respond_error(stream, 404, &th, "this instance is not part of a fleet");
    };
    let text = match request.body_text() {
        Ok(text) => text,
        Err(e) => return respond_error(stream, e.status, &th, &e.message),
    };
    let doc = match nvpim_obs::json::parse(text) {
        Ok(doc) => doc,
        Err(e) => return respond_error(stream, 400, &th, &format!("invalid gossip document: {e}")),
    };
    fleet.gossip().merge(&doc);
    respond_json(stream, 200, &th, &fleet.gossip().local_doc());
}

/// `POST /fleet/replicate`: store a pushed hot entry. Content addressing
/// makes this safe to accept from any member at any time — the key is
/// recomputed from the canonical request, so a corrupt or stale push can
/// at worst occupy a cache slot, never serve wrong bytes.
fn fleet_replicate(
    stream: &mut TcpStream,
    request: &HttpRequest,
    state: &Arc<ServeState>,
    ctx: &ReqCtx,
) {
    let th = [("X-Trace-Id", ctx.hex.as_str())];
    let Some(fleet) = &state.fleet else {
        return respond_error(stream, 404, &th, "this instance is not part of a fleet");
    };
    let text = match request.body_text() {
        Ok(text) => text,
        Err(e) => return respond_error(stream, e.status, &th, &e.message),
    };
    let doc = match nvpim_obs::json::parse(text) {
        Ok(doc) => doc,
        Err(e) => return respond_error(stream, 400, &th, &format!("invalid JSON body: {e}")),
    };
    let Some(request_doc) = doc.get("request") else {
        return respond_error(stream, 400, &th, "replicate document needs a `request` field");
    };
    let sim_request = match SimRequest::from_json(request_doc) {
        Ok(r) => r,
        Err(e) => {
            return respond_error(stream, 400, &th, &format!("bad request field: {}", e.message))
        }
    };
    let Some(body) = doc.get("body").and_then(Json::as_str) else {
        return respond_error(stream, 400, &th, "replicate document needs a string `body` field");
    };
    let key = sim_request.cache_key();
    state.cache.lock().expect("cache poisoned").insert(
        key,
        sim_request.canonical_text(),
        body.to_owned(),
    );
    fleet.counters.replica_received.fetch_add(1, Ordering::Relaxed);
    state.count("fleet.replica_received");
    respond_json(
        stream,
        200,
        &th,
        &Json::object().with("status", "stored").with("key", key_hex(key)),
    );
}

/// Runs one simulation to completion, populates the cache, absorbs the
/// run's private observer, and (when configured) writes a manifest. With a
/// parent context the run is wrapped in a `serve.execute` child span —
/// opened on whatever thread executes (the detached `/simulate` worker or
/// a `/batch` pool worker), so the trace shows real lanes.
///
/// Requests that do not ask for the per-epoch wear series are answered by
/// the replay-free [`AnalyticWearEngine`] — a closed-form or lazy query
/// whose `SimResult` is bit-identical to a full replay (irreducible
/// configurations fall back to the simulator inside the engine). The body
/// bytes are therefore identical either way, so analytic answers share
/// cache identity with simulated ones; the manifest records which engine
/// path produced the numbers.
fn execute(
    request: &SimRequest,
    state: &ServeState,
    parent: Option<TraceContext>,
) -> Result<String, String> {
    let local = Observer::collecting();
    let started = Instant::now();
    let mut span = parent.map(|ctx| state.tracer.span(ctx, "serve.execute"));
    if let Some(span) = span.as_mut() {
        span.attr_str("workload", request.workload.kind());
        span.attr_str("config", &request.config.to_string());
        span.attr_u64("iterations", request.iterations);
    }
    let run = catch_unwind(AssertUnwindSafe(|| {
        let cfg = request.sim_config();
        let workload = request.build_workload();
        if request.series {
            let result = EnduranceSimulator::new(cfg).run_with(&workload, request.config, &local);
            (wire::result_body(request, &result), None)
        } else {
            let mut engine = AnalyticWearEngine::new(&workload, request.config, cfg);
            let path = engine.path();
            let result = engine.result_at_with(cfg.iterations, &local);
            (wire::result_body(request, &result), Some((path, engine.artifact_use())))
        }
    }));
    drop(span);
    let (body, analytic_path) = match run {
        Ok(outcome) => outcome,
        Err(_) => return Err("simulation rejected the parameter combination".to_owned()),
    };
    let wall_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    state.observer.absorb(&local);
    let key = request.cache_key();
    state.cache.lock().expect("cache poisoned").insert(key, request.canonical_text(), body.clone());
    if let Some(dir) = &state.manifest_dir {
        let mut config = request.canonical_json();
        if let Some((path, usage)) = analytic_path {
            config = config.with("analytic_path", path.label()).with(
                "artifacts",
                Json::object().with("hits", usage.hits).with("misses", usage.misses),
            );
        }
        let manifest = RunManifest::new(&format!("serve:{}", request.workload.kind()))
            .with_config(config)
            .with_observer(&local)
            .with_wall_ns(wall_ns);
        let path = dir.join(format!("{}.manifest.json", key_hex(key)));
        if let Err(e) = std::fs::write(&path, manifest.render()) {
            eprintln!("nvpim-serve: manifest write to {} failed: {e}", path.display());
        }
    }
    Ok(body)
}

/// `POST /batch`: fan a sweep through a [`JobPool`] and stream one NDJSON
/// line per completed cell, in completion order.
fn batch(stream: &mut TcpStream, request: &HttpRequest, state: &Arc<ServeState>, ctx: &ReqCtx) {
    let th = [("X-Trace-Id", ctx.hex.as_str())];
    let text = match request.body_text() {
        Ok(text) => text,
        Err(e) => return respond_error(stream, e.status, &th, &e.message),
    };
    let doc = match nvpim_obs::json::parse(text) {
        Ok(doc) => doc,
        Err(e) => return respond_error(stream, 400, &th, &format!("invalid JSON body: {e}")),
    };
    let cells = match &doc {
        Json::Arr(items) => items.as_slice(),
        Json::Obj(_) => match doc.get("requests") {
            Some(Json::Arr(items)) => items.as_slice(),
            _ => {
                return respond_error(
                    stream,
                    400,
                    &th,
                    "expected {\"requests\": [...]} or a JSON array",
                )
            }
        },
        _ => {
            return respond_error(
                stream,
                400,
                &th,
                "expected {\"requests\": [...]} or a JSON array",
            )
        }
    };
    if cells.is_empty() {
        return respond_error(stream, 400, &th, "batch contains no requests");
    }
    if cells.len() > MAX_BATCH_CELLS {
        return respond_error(
            stream,
            400,
            &th,
            &format!("batch of {} exceeds the {MAX_BATCH_CELLS}-cell limit", cells.len()),
        );
    }
    let mut parsed = Vec::with_capacity(cells.len());
    for (index, cell) in cells.iter().enumerate() {
        match SimRequest::from_json(cell) {
            Ok(r) => parsed.push((index, r)),
            Err(e) => {
                return respond_error(stream, 400, &th, &format!("cell {index}: {}", e.message))
            }
        }
    }
    state
        .observer
        .record(&Event::CounterAdd { name: "serve.batch.cells", delta: parsed.len() as u64 });

    if http::write_stream_head(stream, "application/x-ndjson", &th).is_err() {
        return;
    }
    // A batch that already hopped once is served entirely locally — the
    // same single-hop guarantee forwarded `/simulate` calls have.
    let forwarding_allowed = request.header("x-fleet-hop").is_none();
    let out = Mutex::new(&mut *stream);
    let pool = JobPool::new(state.workers);
    pool.map(parsed, |(index, cell)| {
        let key = cell.cache_key();
        let canonical = cell.canonical_text();
        let cached = state.cache.lock().expect("cache poisoned").get(key, &canonical);
        let (was_cached, hops, line) = match cached {
            Some(body) => {
                state.count("serve.cache.hits");
                if let Some(fleet) = &state.fleet {
                    if fleet.owns(key) && fleet.note_owned_hit(key) {
                        spawn_replication(state, key, canonical.clone());
                    }
                }
                (true, 0u64, body)
            }
            None => {
                state.count("serve.cache.misses");
                let remote = match &state.fleet {
                    Some(fleet) if forwarding_allowed => match fleet.route(key) {
                        Route::Forward(owner) => {
                            let fetched =
                                fleet_fetch_remote(state, fleet, &owner, key, &canonical, ctx);
                            if fetched.is_none() {
                                fleet.counters.fallback_local.fetch_add(1, Ordering::Relaxed);
                                state.count("fleet.fallback_local");
                            }
                            fetched
                        }
                        Route::Local => None,
                    },
                    _ => None,
                };
                match remote {
                    Some(RemoteAnswer::Owner { cache, body }) => (cache == "hit", 1, body),
                    Some(RemoteAnswer::Replica { body, .. }) => (true, 1, body),
                    None => match execute(&cell, state, Some(ctx.span)) {
                        Ok(body) => (false, 0, body),
                        Err(message) => {
                            let doc =
                                Json::object().with("index", index).with("error", message).render();
                            let mut w = out.lock().expect("batch stream poisoned");
                            let _ = writeln!(w, "{doc}");
                            return;
                        }
                    },
                }
            }
        };
        let response = nvpim_obs::json::parse(&line).unwrap_or(Json::Str(line));
        let mut doc = Json::object()
            .with("index", index)
            .with("cached", was_cached)
            .with("response", response);
        if state.fleet.is_some() {
            doc = doc.with("hops", hops);
        }
        let mut w = out.lock().expect("batch stream poisoned");
        let _ = writeln!(w, "{}", doc.render());
    });
    let _ = stream.flush();
}
