//! The content-addressed result cache.
//!
//! Soundness rests on the determinism contract from the parallel-engine
//! work: a canonical request fully determines its result bytes, so a cache
//! entry can be served forever without revalidation. Keys are FNV-1a over
//! the canonical request ([`SimRequest::cache_key`]); each entry stores the
//! canonical request text alongside the body and lookups compare it, so a
//! 64-bit collision degrades to a miss, never a wrong answer.
//!
//! Two tiers:
//!
//! * an in-memory LRU bounded by entry count (eviction order is tracked in
//!   a `VecDeque`; a hit moves its key to the back);
//! * an optional on-disk JSON spill directory. Inserts write through
//!   (best-effort), misses fall back to disk before recomputing, and
//!   evicted entries stay on disk — so a warm cache survives restarts and
//!   overflow degrades to a file read, not a re-simulation.
//!
//! The spill directory carries an append-only `index.jsonl` (one
//! `{"key":"<hex>"}` line per spilled entry). The index is loaded into a
//! key set at startup and consulted before any disk read, so a cold miss
//! costs a hash lookup instead of a filesystem probe. A directory written
//! by an older server (entries but no index) is scanned once and the index
//! rewritten; after that, startup never lists the directory again. The
//! stored-request collision guard is unchanged — the index only says a key
//! *may* be on disk, the entry's canonical request still decides.
//!
//! [`SimRequest::cache_key`]: crate::request::SimRequest::cache_key

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use nvpim_obs::Json;

use crate::hash::key_hex;
use crate::http;

struct Entry {
    request: String,
    body: String,
    /// The complete HTTP hit response (head + body, `X-Cache: hit`),
    /// rendered once when the entry is admitted so serving a hit is a
    /// single buffer write with no per-request formatting.
    rendered: Vec<u8>,
}

/// Point-in-time cache statistics (served by `/metrics`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from memory or disk.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted from memory (still on disk when spill is enabled).
    pub evictions: u64,
    /// Hits satisfied by reading a spilled entry back from disk.
    pub disk_loads: u64,
    /// Entries currently resident in memory.
    pub resident: usize,
    /// Keys the spill index knows to exist on disk (0 without spill).
    pub indexed: usize,
}

impl CacheStats {
    /// Serializes the statistics for the `/metrics` document.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::object()
            .with("hits", self.hits)
            .with("misses", self.misses)
            .with("evictions", self.evictions)
            .with("disk_loads", self.disk_loads)
            .with("resident", self.resident)
            .with("indexed", self.indexed)
    }
}

/// The in-memory view of `index.jsonl`: which keys have spilled entries.
struct DiskIndex {
    keys: HashSet<u64>,
    path: PathBuf,
}

impl DiskIndex {
    const FILE_NAME: &'static str = "index.jsonl";

    /// Loads the index for `dir`, rebuilding it with a one-time directory
    /// scan when the file is absent (a pre-index spill directory or a
    /// brand-new one — either way the file exists afterwards).
    fn open(dir: &Path) -> DiskIndex {
        let path = dir.join(Self::FILE_NAME);
        if let Ok(text) = std::fs::read_to_string(&path) {
            let keys = text
                .lines()
                .filter_map(|line| {
                    let doc = nvpim_obs::json::parse(line).ok()?;
                    u64::from_str_radix(doc.get("key")?.as_str()?, 16).ok()
                })
                .collect();
            return DiskIndex { keys, path };
        }
        let mut index = DiskIndex { keys: HashSet::new(), path };
        index.rebuild_from_scan(dir);
        index
    }

    /// Scans `dir` for `<hex>.json` spill entries and rewrites the index
    /// file to match. Only runs when the index file is missing.
    fn rebuild_from_scan(&mut self, dir: &Path) {
        if let Ok(entries) = std::fs::read_dir(dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(stem) = name.to_str().and_then(|n| n.strip_suffix(".json")) else {
                    continue;
                };
                if let Ok(key) = u64::from_str_radix(stem, 16) {
                    self.keys.insert(key);
                }
            }
        }
        let mut doc = String::new();
        for &key in &self.keys {
            doc.push_str(&Self::line(key));
        }
        if let Err(e) = std::fs::write(&self.path, doc) {
            eprintln!("nvpim-serve: cache index write to {} failed: {e}", self.path.display());
        }
    }

    /// Records a newly spilled key, appending one line to the index file.
    fn record(&mut self, key: u64) {
        if !self.keys.insert(key) {
            return; // re-spill of a known key; the line is already there
        }
        let appended = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
            .and_then(|mut f| f.write_all(Self::line(key).as_bytes()));
        if let Err(e) = appended {
            eprintln!("nvpim-serve: cache index append to {} failed: {e}", self.path.display());
        }
    }

    fn contains(&self, key: u64) -> bool {
        self.keys.contains(&key)
    }

    fn line(key: u64) -> String {
        let mut line = Json::object().with("key", key_hex(key)).render();
        line.push('\n');
        line
    }
}

/// A bounded LRU of rendered result bodies keyed by request content hash,
/// with optional on-disk spill.
pub struct ResultCache {
    entries: HashMap<u64, Entry>,
    /// LRU order; front = least recently used.
    order: VecDeque<u64>,
    capacity: usize,
    dir: Option<PathBuf>,
    /// Present exactly when `dir` is.
    index: Option<DiskIndex>,
    stats: CacheStats,
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache")
            .field("resident", &self.entries.len())
            .field("capacity", &self.capacity)
            .field("dir", &self.dir)
            .finish()
    }
}

impl ResultCache {
    /// A cache holding at most `capacity` bodies in memory, spilling to
    /// `dir` when given (the directory is created eagerly so a bad path
    /// fails at startup, not mid-request).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or the spill directory cannot be
    /// created.
    #[must_use]
    pub fn new(capacity: usize, dir: Option<PathBuf>) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        if let Some(dir) = &dir {
            std::fs::create_dir_all(dir)
                .unwrap_or_else(|e| panic!("cannot create cache dir {}: {e}", dir.display()));
        }
        let index = dir.as_deref().map(DiskIndex::open);
        ResultCache {
            entries: HashMap::new(),
            order: VecDeque::new(),
            capacity,
            dir,
            index,
            stats: CacheStats::default(),
        }
    }

    /// Looks up the body cached for `(key, canonical_request)`, consulting
    /// memory first and then the spill directory. A hit refreshes the
    /// entry's LRU position (and re-admits a disk entry to memory).
    pub fn get(&mut self, key: u64, canonical_request: &str) -> Option<String> {
        self.lookup(key, canonical_request).map(|entry| entry.body.clone())
    }

    /// Like [`ResultCache::get`], but returns the pre-rendered HTTP hit
    /// response (head + body) so the caller can answer with one write.
    pub fn get_response(&mut self, key: u64, canonical_request: &str) -> Option<Vec<u8>> {
        self.lookup(key, canonical_request).map(|entry| entry.rendered.clone())
    }

    fn lookup(&mut self, key: u64, canonical_request: &str) -> Option<&Entry> {
        if let Some(entry) = self.entries.get(&key) {
            if entry.request != canonical_request {
                // Hash collision: different request under this key. Treat as
                // a miss; the colliding insert will overwrite and that is
                // fine — correctness only requires never serving the wrong
                // body.
                self.stats.misses += 1;
                return None;
            }
            self.touch(key);
            self.stats.hits += 1;
            return self.entries.get(&key);
        }
        if let Some(body) = self.load_from_disk(key, canonical_request) {
            self.admit(key, canonical_request.to_owned(), body);
            self.stats.disk_loads += 1;
            self.stats.hits += 1;
            return self.entries.get(&key);
        }
        self.stats.misses += 1;
        None
    }

    /// Inserts a freshly computed body, writing through to the spill
    /// directory (best-effort) and evicting the least-recently-used
    /// resident entry on overflow.
    pub fn insert(&mut self, key: u64, canonical_request: String, body: String) {
        self.spill_to_disk(key, &canonical_request, &body);
        self.admit(key, canonical_request, body);
    }

    /// Current statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            resident: self.entries.len(),
            indexed: self.index.as_ref().map_or(0, |i| i.keys.len()),
            ..self.stats
        }
    }

    fn admit(&mut self, key: u64, request: String, body: String) {
        let rendered = http::render_response(200, &[("X-Cache", "hit")], "application/json", &body);
        if self.entries.insert(key, Entry { request, body, rendered }).is_some() {
            self.touch(key);
        } else {
            self.order.push_back(key);
        }
        while self.entries.len() > self.capacity {
            let Some(oldest) = self.order.pop_front() else { break };
            self.entries.remove(&oldest);
            self.stats.evictions += 1;
        }
    }

    fn touch(&mut self, key: u64) {
        if let Some(pos) = self.order.iter().position(|&k| k == key) {
            self.order.remove(pos);
            self.order.push_back(key);
        }
    }

    fn spill_path(&self, key: u64) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(format!("{}.json", key_hex(key))))
    }

    fn spill_to_disk(&mut self, key: u64, request: &str, body: &str) {
        let Some(path) = self.spill_path(key) else { return };
        let doc = Json::object().with("request", request).with("response", body).render();
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("nvpim-serve: cache spill to {} failed: {e}", path.display());
            return;
        }
        if let Some(index) = &mut self.index {
            index.record(key);
        }
    }

    fn load_from_disk(&self, key: u64, canonical_request: &str) -> Option<String> {
        // The index is authoritative for what this cache (or a prior run
        // over the same directory) spilled; an unknown key never touches
        // the filesystem.
        if !self.index.as_ref()?.contains(key) {
            return None;
        }
        let path = self.spill_path(key)?;
        let text = std::fs::read_to_string(path).ok()?;
        let doc = nvpim_obs::json::parse(&text).ok()?;
        if doc.get("request").and_then(Json::as_str) != Some(canonical_request) {
            return None;
        }
        doc.get("response").and_then(Json::as_str).map(str::to_owned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert_and_miss_before() {
        let mut cache = ResultCache::new(4, None);
        assert_eq!(cache.get(1, "req-1"), None);
        cache.insert(1, "req-1".into(), "body-1".into());
        assert_eq!(cache.get(1, "req-1"), Some("body-1".into()));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.resident), (1, 1, 1));
    }

    #[test]
    fn hit_response_is_prerendered_http() {
        let mut cache = ResultCache::new(4, None);
        assert_eq!(cache.get_response(9, "req"), None);
        cache.insert(9, "req".into(), "{\"x\":1}".into());
        let bytes = cache.get_response(9, "req").expect("hit");
        let text = String::from_utf8(bytes).expect("response is UTF-8");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("X-Cache: hit\r\n"), "{text}");
        assert!(text.contains("Content-Length: 7\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{\"x\":1}"), "{text}");
        // Both accessors count as hits on the same entry.
        assert_eq!(cache.get(9, "req"), Some("{\"x\":1}".into()));
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn colliding_key_with_different_request_never_serves_wrong_body() {
        let mut cache = ResultCache::new(4, None);
        cache.insert(7, "req-a".into(), "body-a".into());
        assert_eq!(cache.get(7, "req-b"), None, "collision must miss, not serve body-a");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut cache = ResultCache::new(2, None);
        cache.insert(1, "r1".into(), "b1".into());
        cache.insert(2, "r2".into(), "b2".into());
        assert!(cache.get(1, "r1").is_some()); // refresh 1; 2 is now oldest
        cache.insert(3, "r3".into(), "b3".into());
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.get(2, "r2"), None, "2 was LRU and must be evicted");
        assert!(cache.get(1, "r1").is_some());
        assert!(cache.get(3, "r3").is_some());
    }

    #[test]
    fn reinserting_same_key_does_not_grow_the_cache() {
        let mut cache = ResultCache::new(2, None);
        cache.insert(1, "r1".into(), "b1".into());
        cache.insert(1, "r1".into(), "b1-v2".into());
        cache.insert(2, "r2".into(), "b2".into());
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.get(1, "r1"), Some("b1-v2".into()));
    }

    #[test]
    fn disk_spill_survives_eviction_and_restart() {
        let dir = std::env::temp_dir().join(format!("nvpim-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut cache = ResultCache::new(1, Some(dir.clone()));
            cache.insert(1, "r1".into(), "b1".into());
            cache.insert(2, "r2".into(), "b2".into()); // evicts 1 from memory
            assert_eq!(cache.stats().evictions, 1);
            assert_eq!(cache.get(1, "r1"), Some("b1".into()), "evicted entry reloads from disk");
            assert_eq!(cache.stats().disk_loads, 1);
        }
        // A fresh cache over the same directory (a restarted server) is
        // warm immediately.
        let mut fresh = ResultCache::new(4, Some(dir.clone()));
        assert_eq!(fresh.get(2, "r2"), Some("b2".into()));
        assert_eq!(fresh.stats().disk_loads, 1);
        // ...but only for matching canonical requests.
        assert_eq!(fresh.get(2, "other-request"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nvpim-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn spill_appends_to_the_index_and_startup_loads_it() {
        let dir = scratch_dir("index");
        {
            let mut cache = ResultCache::new(4, Some(dir.clone()));
            cache.insert(0xA, "ra".into(), "ba".into());
            cache.insert(0xB, "rb".into(), "bb".into());
            assert_eq!(cache.stats().indexed, 2);
        }
        let index = std::fs::read_to_string(dir.join("index.jsonl")).expect("index written");
        assert!(index.contains(&key_hex(0xA)), "{index}");
        assert!(index.contains(&key_hex(0xB)), "{index}");
        assert_eq!(index.lines().count(), 2, "one line per spilled key: {index}");
        // A restarted server knows both keys before touching any entry file.
        let mut fresh = ResultCache::new(4, Some(dir.clone()));
        assert_eq!(fresh.stats().indexed, 2);
        assert_eq!(fresh.get(0xA, "ra"), Some("ba".into()));
        assert_eq!(fresh.get(0xB, "rb"), Some("bb".into()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_index_is_rebuilt_by_a_one_time_scan() {
        let dir = scratch_dir("rebuild");
        {
            let mut cache = ResultCache::new(4, Some(dir.clone()));
            cache.insert(0xC, "rc".into(), "bc".into());
        }
        // A pre-index directory: entries on disk, no index file.
        std::fs::remove_file(dir.join("index.jsonl")).expect("index existed");
        let mut fresh = ResultCache::new(4, Some(dir.clone()));
        assert_eq!(fresh.stats().indexed, 1, "scan found the spilled entry");
        assert_eq!(fresh.get(0xC, "rc"), Some("bc".into()));
        assert!(dir.join("index.jsonl").exists(), "rebuild rewrote the index");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn keys_absent_from_the_index_never_probe_the_disk() {
        let dir = scratch_dir("gate");
        // Creating the cache writes an (empty) index for the fresh dir.
        drop(ResultCache::new(4, Some(dir.clone())));
        // A file smuggled in behind the index's back is invisible: the key
        // set gates every disk read.
        let doc = Json::object().with("request", "rx").with("response", "bx").render();
        std::fs::write(dir.join(format!("{}.json", key_hex(0xD))), doc).unwrap();
        let mut cache = ResultCache::new(4, Some(dir.clone()));
        assert_eq!(cache.get(0xD, "rx"), None);
        assert_eq!(cache.stats().disk_loads, 0);
        assert_eq!(cache.stats().indexed, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn index_survives_a_stale_entry_file() {
        let dir = scratch_dir("stale");
        {
            let mut cache = ResultCache::new(4, Some(dir.clone()));
            cache.insert(0xE, "re".into(), "be".into());
        }
        // Entry file lost (disk cleanup) but index line retained: the
        // lookup degrades to a miss, never a panic or wrong body.
        std::fs::remove_file(dir.join(format!("{}.json", key_hex(0xE)))).unwrap();
        let mut cache = ResultCache::new(4, Some(dir.clone()));
        assert_eq!(cache.stats().indexed, 1);
        assert_eq!(cache.get(0xE, "re"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
