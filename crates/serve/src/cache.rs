//! The content-addressed result cache.
//!
//! Soundness rests on the determinism contract from the parallel-engine
//! work: a canonical request fully determines its result bytes, so a cache
//! entry can be served forever without revalidation. Keys are FNV-1a over
//! the canonical request ([`SimRequest::cache_key`]); each entry stores the
//! canonical request text alongside the body and lookups compare it, so a
//! 64-bit collision degrades to a miss, never a wrong answer.
//!
//! Two tiers:
//!
//! * an in-memory LRU bounded by entry count (eviction order is tracked in
//!   a `VecDeque`; a hit moves its key to the back);
//! * an optional on-disk JSON spill directory. Inserts write through
//!   (best-effort), misses fall back to disk before recomputing, and
//!   evicted entries stay on disk — so a warm cache survives restarts and
//!   overflow degrades to a file read, not a re-simulation.
//!
//! The spill directory carries an append-only `index.jsonl` (one
//! `{"key":"<hex>","bytes":n,"ts":unix_s}` line per spilled entry, in spill
//! order). The index is loaded at startup and consulted before any disk
//! read, so a cold miss costs a hash lookup instead of a filesystem probe.
//! A directory written by an older server (entries but no index) is scanned
//! once and the index rewritten; after that, startup never lists the
//! directory again. Lines from a pre-compaction index that lack
//! `bytes`/`ts` load as zero — size-unknown and ancient — so an age limit
//! retires them on the first pass rather than letting them escape the
//! bound. The stored-request collision guard is unchanged — the index only
//! says a key *may* be on disk, the entry's canonical request still
//! decides.
//!
//! When spill limits are set ([`ResultCache::with_spill_limits`]) every
//! spill runs a compaction pass: entries are retired oldest-first (index
//! order *is* LRU-by-spill order) while the directory exceeds its byte
//! budget or holds entries past the age limit, the entry files are deleted,
//! and the index is rewritten. Compaction never touches the in-memory tier;
//! a retired entry simply recomputes on its next cold miss.
//!
//! [`SimRequest::cache_key`]: crate::request::SimRequest::cache_key

use std::collections::{HashMap, HashSet, VecDeque};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use nvpim_obs::Json;

use crate::hash::key_hex;
use crate::http;

struct Entry {
    request: String,
    body: String,
    /// The complete HTTP hit response (head + body, `X-Cache: hit`),
    /// rendered once when the entry is admitted so serving a hit is a
    /// single buffer write with no per-request formatting.
    rendered: Vec<u8>,
}

/// Point-in-time cache statistics (served by `/metrics`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from memory or disk.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted from memory (still on disk when spill is enabled).
    pub evictions: u64,
    /// Hits satisfied by reading a spilled entry back from disk.
    pub disk_loads: u64,
    /// Entries currently resident in memory.
    pub resident: usize,
    /// Keys the spill index knows to exist on disk (0 without spill).
    pub indexed: usize,
    /// Compaction passes that retired at least one spilled entry.
    pub compactions: u64,
    /// Spilled entries retired by compaction (size or age).
    pub compacted_entries: u64,
    /// Bytes reclaimed from the spill directory by compaction.
    pub compacted_bytes: u64,
    /// Bytes the spill directory currently holds (per the index).
    pub spill_bytes: u64,
}

impl CacheStats {
    /// Serializes the statistics for the `/metrics` document.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::object()
            .with("hits", self.hits)
            .with("misses", self.misses)
            .with("evictions", self.evictions)
            .with("disk_loads", self.disk_loads)
            .with("resident", self.resident)
            .with("indexed", self.indexed)
            .with("compactions", self.compactions)
            .with("compacted_entries", self.compacted_entries)
            .with("compacted_bytes", self.compacted_bytes)
            .with("spill_bytes", self.spill_bytes)
    }
}

/// Seconds since the Unix epoch (0 if the clock is before it).
fn unix_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs())
}

/// One spilled entry as the index knows it.
#[derive(Debug, Clone, Copy)]
struct IndexEntry {
    key: u64,
    /// Entry-file size at spill time (0 when loaded from a pre-compaction
    /// index line that did not record it).
    bytes: u64,
    /// Unix seconds at spill time (0 = unknown, treated as ancient).
    ts: u64,
}

/// The in-memory view of `index.jsonl`: which keys have spilled entries,
/// in spill order (front = oldest, the compaction victim).
struct DiskIndex {
    entries: Vec<IndexEntry>,
    keys: HashSet<u64>,
    total_bytes: u64,
    path: PathBuf,
}

impl DiskIndex {
    const FILE_NAME: &'static str = "index.jsonl";

    /// Loads the index for `dir`, rebuilding it with a one-time directory
    /// scan when the file is absent (a pre-index spill directory or a
    /// brand-new one — either way the file exists afterwards).
    fn open(dir: &Path) -> DiskIndex {
        let path = dir.join(Self::FILE_NAME);
        if let Ok(text) = std::fs::read_to_string(&path) {
            let mut index =
                DiskIndex { entries: Vec::new(), keys: HashSet::new(), total_bytes: 0, path };
            for line in text.lines() {
                let Ok(doc) = nvpim_obs::json::parse(line) else { continue };
                let Some(key) = doc
                    .get("key")
                    .and_then(Json::as_str)
                    .and_then(|h| u64::from_str_radix(h, 16).ok())
                else {
                    continue;
                };
                let bytes = doc.get("bytes").and_then(Json::as_u64).unwrap_or(0);
                let ts = doc.get("ts").and_then(Json::as_u64).unwrap_or(0);
                if index.keys.insert(key) {
                    index.total_bytes += bytes;
                    index.entries.push(IndexEntry { key, bytes, ts });
                }
            }
            return index;
        }
        let mut index =
            DiskIndex { entries: Vec::new(), keys: HashSet::new(), total_bytes: 0, path };
        index.rebuild_from_scan(dir);
        index
    }

    /// Scans `dir` for `<hex>.json` spill entries and rewrites the index
    /// file to match, taking sizes and ages from file metadata. Only runs
    /// when the index file is missing.
    fn rebuild_from_scan(&mut self, dir: &Path) {
        if let Ok(dir_entries) = std::fs::read_dir(dir) {
            for entry in dir_entries.flatten() {
                let name = entry.file_name();
                let Some(stem) = name.to_str().and_then(|n| n.strip_suffix(".json")) else {
                    continue;
                };
                let Ok(key) = u64::from_str_radix(stem, 16) else { continue };
                let meta = entry.metadata().ok();
                let bytes = meta.as_ref().map_or(0, std::fs::Metadata::len);
                let ts = meta
                    .and_then(|m| m.modified().ok())
                    .and_then(|t| t.duration_since(std::time::SystemTime::UNIX_EPOCH).ok())
                    .map_or(0, |d| d.as_secs());
                if self.keys.insert(key) {
                    self.total_bytes += bytes;
                    self.entries.push(IndexEntry { key, bytes, ts });
                }
            }
        }
        // Oldest first, so compaction order matches a chronological spill.
        self.entries.sort_by_key(|e| e.ts);
        self.rewrite();
    }

    /// Records a newly spilled key, appending one line to the index file.
    fn record(&mut self, key: u64, bytes: u64) {
        if !self.keys.insert(key) {
            return; // re-spill of a known key; the line is already there
        }
        let entry = IndexEntry { key, bytes, ts: unix_now() };
        self.total_bytes += bytes;
        self.entries.push(entry);
        let appended = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
            .and_then(|mut f| f.write_all(Self::line(entry).as_bytes()));
        if let Err(e) = appended {
            eprintln!("nvpim-serve: cache index append to {} failed: {e}", self.path.display());
        }
    }

    fn contains(&self, key: u64) -> bool {
        self.keys.contains(&key)
    }

    /// Retires entries oldest-first while the directory exceeds
    /// `max_bytes` (0 = no byte bound) or holds entries older than
    /// `max_age_s` (0 = no age bound), deleting their files and rewriting
    /// the index. Returns `(entries retired, bytes reclaimed)`.
    fn compact(&mut self, max_bytes: u64, max_age_s: u64) -> (u64, u64) {
        let now = unix_now();
        let mut retired = 0u64;
        let mut reclaimed = 0u64;
        while let Some(&oldest) = self.entries.first() {
            let too_old = max_age_s > 0 && oldest.ts.saturating_add(max_age_s) < now;
            let too_big = max_bytes > 0 && self.total_bytes > max_bytes;
            if !too_old && !too_big {
                break;
            }
            self.entries.remove(0);
            self.keys.remove(&oldest.key);
            self.total_bytes -= oldest.bytes;
            retired += 1;
            reclaimed += oldest.bytes;
            if let Some(dir) = self.path.parent() {
                let _ = std::fs::remove_file(dir.join(format!("{}.json", key_hex(oldest.key))));
            }
        }
        if retired > 0 {
            self.rewrite();
        }
        (retired, reclaimed)
    }

    /// Rewrites the whole index file from the in-memory entries.
    fn rewrite(&self) {
        let mut doc = String::new();
        for &entry in &self.entries {
            doc.push_str(&Self::line(entry));
        }
        if let Err(e) = std::fs::write(&self.path, doc) {
            eprintln!("nvpim-serve: cache index write to {} failed: {e}", self.path.display());
        }
    }

    fn line(entry: IndexEntry) -> String {
        let mut line = Json::object()
            .with("key", key_hex(entry.key))
            .with("bytes", entry.bytes)
            .with("ts", entry.ts)
            .render();
        line.push('\n');
        line
    }
}

/// A bounded LRU of rendered result bodies keyed by request content hash,
/// with optional on-disk spill.
pub struct ResultCache {
    entries: HashMap<u64, Entry>,
    /// LRU order; front = least recently used.
    order: VecDeque<u64>,
    capacity: usize,
    dir: Option<PathBuf>,
    /// Present exactly when `dir` is.
    index: Option<DiskIndex>,
    /// Spill-directory byte budget (0 = unlimited).
    max_spill_bytes: u64,
    /// Spill-entry age limit in seconds (0 = unlimited).
    max_spill_age_s: u64,
    stats: CacheStats,
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache")
            .field("resident", &self.entries.len())
            .field("capacity", &self.capacity)
            .field("dir", &self.dir)
            .finish()
    }
}

impl ResultCache {
    /// A cache holding at most `capacity` bodies in memory, spilling to
    /// `dir` when given (the directory is created eagerly so a bad path
    /// fails at startup, not mid-request).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or the spill directory cannot be
    /// created.
    #[must_use]
    pub fn new(capacity: usize, dir: Option<PathBuf>) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        if let Some(dir) = &dir {
            std::fs::create_dir_all(dir)
                .unwrap_or_else(|e| panic!("cannot create cache dir {}: {e}", dir.display()));
        }
        let index = dir.as_deref().map(DiskIndex::open);
        ResultCache {
            entries: HashMap::new(),
            order: VecDeque::new(),
            capacity,
            dir,
            index,
            max_spill_bytes: 0,
            max_spill_age_s: 0,
            stats: CacheStats::default(),
        }
    }

    /// Bounds the spill directory: at most `max_bytes` of entry files
    /// (0 = unlimited) and no entry older than `max_age_s` seconds
    /// (0 = unlimited). Runs one compaction pass immediately, so a
    /// restarted server over an oversized directory trims it before
    /// serving. No-op without a spill directory.
    #[must_use]
    pub fn with_spill_limits(mut self, max_bytes: u64, max_age_s: u64) -> Self {
        self.max_spill_bytes = max_bytes;
        self.max_spill_age_s = max_age_s;
        self.compact();
        self
    }

    /// Looks up the body cached for `(key, canonical_request)`, consulting
    /// memory first and then the spill directory. A hit refreshes the
    /// entry's LRU position (and re-admits a disk entry to memory).
    pub fn get(&mut self, key: u64, canonical_request: &str) -> Option<String> {
        self.lookup(key, canonical_request).map(|entry| entry.body.clone())
    }

    /// Like [`ResultCache::get`], but returns the pre-rendered HTTP hit
    /// response (head + body) so the caller can answer with one write.
    pub fn get_response(&mut self, key: u64, canonical_request: &str) -> Option<Vec<u8>> {
        self.lookup(key, canonical_request).map(|entry| entry.rendered.clone())
    }

    fn lookup(&mut self, key: u64, canonical_request: &str) -> Option<&Entry> {
        if let Some(entry) = self.entries.get(&key) {
            if entry.request != canonical_request {
                // Hash collision: different request under this key. Treat as
                // a miss; the colliding insert will overwrite and that is
                // fine — correctness only requires never serving the wrong
                // body.
                self.stats.misses += 1;
                return None;
            }
            self.touch(key);
            self.stats.hits += 1;
            return self.entries.get(&key);
        }
        if let Some(body) = self.load_from_disk(key, canonical_request) {
            self.admit(key, canonical_request.to_owned(), body);
            self.stats.disk_loads += 1;
            self.stats.hits += 1;
            return self.entries.get(&key);
        }
        self.stats.misses += 1;
        None
    }

    /// Inserts a freshly computed body, writing through to the spill
    /// directory (best-effort) and evicting the least-recently-used
    /// resident entry on overflow.
    pub fn insert(&mut self, key: u64, canonical_request: String, body: String) {
        self.spill_to_disk(key, &canonical_request, &body);
        self.admit(key, canonical_request, body);
    }

    /// Current statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            resident: self.entries.len(),
            indexed: self.index.as_ref().map_or(0, |i| i.keys.len()),
            spill_bytes: self.index.as_ref().map_or(0, |i| i.total_bytes),
            ..self.stats
        }
    }

    /// Runs one compaction pass against the configured spill limits.
    fn compact(&mut self) {
        if self.max_spill_bytes == 0 && self.max_spill_age_s == 0 {
            return;
        }
        let Some(index) = &mut self.index else { return };
        let (retired, reclaimed) = index.compact(self.max_spill_bytes, self.max_spill_age_s);
        if retired > 0 {
            self.stats.compactions += 1;
            self.stats.compacted_entries += retired;
            self.stats.compacted_bytes += reclaimed;
        }
    }

    fn admit(&mut self, key: u64, request: String, body: String) {
        let rendered = http::render_response(200, &[("X-Cache", "hit")], "application/json", &body);
        if self.entries.insert(key, Entry { request, body, rendered }).is_some() {
            self.touch(key);
        } else {
            self.order.push_back(key);
        }
        while self.entries.len() > self.capacity {
            let Some(oldest) = self.order.pop_front() else { break };
            self.entries.remove(&oldest);
            self.stats.evictions += 1;
        }
    }

    fn touch(&mut self, key: u64) {
        if let Some(pos) = self.order.iter().position(|&k| k == key) {
            self.order.remove(pos);
            self.order.push_back(key);
        }
    }

    fn spill_path(&self, key: u64) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(format!("{}.json", key_hex(key))))
    }

    fn spill_to_disk(&mut self, key: u64, request: &str, body: &str) {
        let Some(path) = self.spill_path(key) else { return };
        let doc = Json::object().with("request", request).with("response", body).render();
        let bytes = doc.len() as u64;
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("nvpim-serve: cache spill to {} failed: {e}", path.display());
            return;
        }
        if let Some(index) = &mut self.index {
            index.record(key, bytes);
        }
        self.compact();
    }

    fn load_from_disk(&self, key: u64, canonical_request: &str) -> Option<String> {
        // The index is authoritative for what this cache (or a prior run
        // over the same directory) spilled; an unknown key never touches
        // the filesystem.
        if !self.index.as_ref()?.contains(key) {
            return None;
        }
        let path = self.spill_path(key)?;
        let text = std::fs::read_to_string(path).ok()?;
        let doc = nvpim_obs::json::parse(&text).ok()?;
        if doc.get("request").and_then(Json::as_str) != Some(canonical_request) {
            return None;
        }
        doc.get("response").and_then(Json::as_str).map(str::to_owned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert_and_miss_before() {
        let mut cache = ResultCache::new(4, None);
        assert_eq!(cache.get(1, "req-1"), None);
        cache.insert(1, "req-1".into(), "body-1".into());
        assert_eq!(cache.get(1, "req-1"), Some("body-1".into()));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.resident), (1, 1, 1));
    }

    #[test]
    fn hit_response_is_prerendered_http() {
        let mut cache = ResultCache::new(4, None);
        assert_eq!(cache.get_response(9, "req"), None);
        cache.insert(9, "req".into(), "{\"x\":1}".into());
        let bytes = cache.get_response(9, "req").expect("hit");
        let text = String::from_utf8(bytes).expect("response is UTF-8");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("X-Cache: hit\r\n"), "{text}");
        assert!(text.contains("Content-Length: 7\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{\"x\":1}"), "{text}");
        // Both accessors count as hits on the same entry.
        assert_eq!(cache.get(9, "req"), Some("{\"x\":1}".into()));
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn colliding_key_with_different_request_never_serves_wrong_body() {
        let mut cache = ResultCache::new(4, None);
        cache.insert(7, "req-a".into(), "body-a".into());
        assert_eq!(cache.get(7, "req-b"), None, "collision must miss, not serve body-a");
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut cache = ResultCache::new(2, None);
        cache.insert(1, "r1".into(), "b1".into());
        cache.insert(2, "r2".into(), "b2".into());
        assert!(cache.get(1, "r1").is_some()); // refresh 1; 2 is now oldest
        cache.insert(3, "r3".into(), "b3".into());
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.get(2, "r2"), None, "2 was LRU and must be evicted");
        assert!(cache.get(1, "r1").is_some());
        assert!(cache.get(3, "r3").is_some());
    }

    #[test]
    fn reinserting_same_key_does_not_grow_the_cache() {
        let mut cache = ResultCache::new(2, None);
        cache.insert(1, "r1".into(), "b1".into());
        cache.insert(1, "r1".into(), "b1-v2".into());
        cache.insert(2, "r2".into(), "b2".into());
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.get(1, "r1"), Some("b1-v2".into()));
    }

    #[test]
    fn disk_spill_survives_eviction_and_restart() {
        let dir = std::env::temp_dir().join(format!("nvpim-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut cache = ResultCache::new(1, Some(dir.clone()));
            cache.insert(1, "r1".into(), "b1".into());
            cache.insert(2, "r2".into(), "b2".into()); // evicts 1 from memory
            assert_eq!(cache.stats().evictions, 1);
            assert_eq!(cache.get(1, "r1"), Some("b1".into()), "evicted entry reloads from disk");
            assert_eq!(cache.stats().disk_loads, 1);
        }
        // A fresh cache over the same directory (a restarted server) is
        // warm immediately.
        let mut fresh = ResultCache::new(4, Some(dir.clone()));
        assert_eq!(fresh.get(2, "r2"), Some("b2".into()));
        assert_eq!(fresh.stats().disk_loads, 1);
        // ...but only for matching canonical requests.
        assert_eq!(fresh.get(2, "other-request"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nvpim-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn spill_appends_to_the_index_and_startup_loads_it() {
        let dir = scratch_dir("index");
        {
            let mut cache = ResultCache::new(4, Some(dir.clone()));
            cache.insert(0xA, "ra".into(), "ba".into());
            cache.insert(0xB, "rb".into(), "bb".into());
            assert_eq!(cache.stats().indexed, 2);
        }
        let index = std::fs::read_to_string(dir.join("index.jsonl")).expect("index written");
        assert!(index.contains(&key_hex(0xA)), "{index}");
        assert!(index.contains(&key_hex(0xB)), "{index}");
        assert_eq!(index.lines().count(), 2, "one line per spilled key: {index}");
        // A restarted server knows both keys before touching any entry file.
        let mut fresh = ResultCache::new(4, Some(dir.clone()));
        assert_eq!(fresh.stats().indexed, 2);
        assert_eq!(fresh.get(0xA, "ra"), Some("ba".into()));
        assert_eq!(fresh.get(0xB, "rb"), Some("bb".into()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_index_is_rebuilt_by_a_one_time_scan() {
        let dir = scratch_dir("rebuild");
        {
            let mut cache = ResultCache::new(4, Some(dir.clone()));
            cache.insert(0xC, "rc".into(), "bc".into());
        }
        // A pre-index directory: entries on disk, no index file.
        std::fs::remove_file(dir.join("index.jsonl")).expect("index existed");
        let mut fresh = ResultCache::new(4, Some(dir.clone()));
        assert_eq!(fresh.stats().indexed, 1, "scan found the spilled entry");
        assert_eq!(fresh.get(0xC, "rc"), Some("bc".into()));
        assert!(dir.join("index.jsonl").exists(), "rebuild rewrote the index");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn keys_absent_from_the_index_never_probe_the_disk() {
        let dir = scratch_dir("gate");
        // Creating the cache writes an (empty) index for the fresh dir.
        drop(ResultCache::new(4, Some(dir.clone())));
        // A file smuggled in behind the index's back is invisible: the key
        // set gates every disk read.
        let doc = Json::object().with("request", "rx").with("response", "bx").render();
        std::fs::write(dir.join(format!("{}.json", key_hex(0xD))), doc).unwrap();
        let mut cache = ResultCache::new(4, Some(dir.clone()));
        assert_eq!(cache.get(0xD, "rx"), None);
        assert_eq!(cache.stats().disk_loads, 0);
        assert_eq!(cache.stats().indexed, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_bounds_spill_bytes_oldest_first() {
        let dir = scratch_dir("compact-bytes");
        let mut cache = ResultCache::new(8, Some(dir.clone())).with_spill_limits(200, 0);
        let body = "x".repeat(60); // each spill file is ~80 bytes with framing
        for key in 1..=5u64 {
            cache.insert(key, format!("r{key}"), body.clone());
        }
        let stats = cache.stats();
        assert!(stats.spill_bytes <= 200, "byte bound violated: {}", stats.spill_bytes);
        assert!(stats.compactions > 0);
        assert!(stats.compacted_entries > 0);
        assert!(stats.compacted_bytes > 0);
        // The oldest spills are the ones gone from disk; the newest survive.
        assert!(!dir.join(format!("{}.json", key_hex(1))).exists(), "oldest entry retired");
        assert!(dir.join(format!("{}.json", key_hex(5))).exists(), "newest entry kept");
        // A restarted cache honors the compacted index: retired keys miss
        // without probing the disk, survivors still load.
        drop(cache);
        let mut fresh = ResultCache::new(8, Some(dir.clone()));
        assert!(fresh.stats().spill_bytes <= 200);
        assert_eq!(fresh.get(1, "r1"), None);
        assert_eq!(fresh.get(5, "r5"), Some(body));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_retires_entries_past_the_age_limit() {
        let dir = scratch_dir("compact-age");
        {
            let mut cache = ResultCache::new(4, Some(dir.clone()));
            cache.insert(1, "r1".into(), "b1".into());
        }
        // Backdate the index entry to two hours ago.
        let index_path = dir.join("index.jsonl");
        let line = std::fs::read_to_string(&index_path).unwrap();
        let doc = nvpim_obs::json::parse(line.trim()).unwrap();
        let bytes = doc.get("bytes").and_then(Json::as_u64).unwrap();
        let backdated = Json::object()
            .with("key", key_hex(1))
            .with("bytes", bytes)
            .with("ts", unix_now() - 7200)
            .render();
        std::fs::write(&index_path, format!("{backdated}\n")).unwrap();
        // An hour-long age limit retires it at startup.
        let mut cache = ResultCache::new(4, Some(dir.clone())).with_spill_limits(0, 3600);
        let stats = cache.stats();
        assert_eq!(stats.compacted_entries, 1);
        assert_eq!(stats.indexed, 0);
        assert!(!dir.join(format!("{}.json", key_hex(1))).exists());
        assert_eq!(cache.get(1, "r1"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pre_compaction_index_lines_load_and_age_out() {
        let dir = scratch_dir("compact-legacy");
        {
            let mut cache = ResultCache::new(4, Some(dir.clone()));
            cache.insert(2, "r2".into(), "b2".into());
        }
        // An index written before compaction existed: key only.
        let legacy = Json::object().with("key", key_hex(2)).render();
        std::fs::write(dir.join("index.jsonl"), format!("{legacy}\n")).unwrap();
        // Without limits the entry still serves.
        let mut cache = ResultCache::new(4, Some(dir.clone()));
        assert_eq!(cache.get(2, "r2"), Some("b2".into()));
        drop(cache);
        std::fs::write(dir.join("index.jsonl"), format!("{legacy}\n")).unwrap();
        // With an age limit the unknown-age (ts 0) entry counts as ancient.
        let cache = ResultCache::new(4, Some(dir.clone())).with_spill_limits(0, 3600);
        assert_eq!(cache.stats().compacted_entries, 1);
        assert_eq!(cache.stats().indexed, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn index_survives_a_stale_entry_file() {
        let dir = scratch_dir("stale");
        {
            let mut cache = ResultCache::new(4, Some(dir.clone()));
            cache.insert(0xE, "re".into(), "be".into());
        }
        // Entry file lost (disk cleanup) but index line retained: the
        // lookup degrades to a miss, never a panic or wrong body.
        std::fs::remove_file(dir.join(format!("{}.json", key_hex(0xE)))).unwrap();
        let mut cache = ResultCache::new(4, Some(dir.clone()));
        assert_eq!(cache.stats().indexed, 1);
        assert_eq!(cache.get(0xE, "re"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
