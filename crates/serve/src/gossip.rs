//! Lightweight health gossip for a static-membership fleet.
//!
//! Membership is fixed at launch (`--peers`); gossip only answers "is this
//! member *currently* alive, and which incarnation of it am I hearing
//! from?". Every instance keeps a [`GossipState`]: its own **generation**
//! (wall-clock millis at startup — a restarted process always gossips a
//! strictly larger generation, so stale liveness from a previous
//! incarnation can never shadow the new one) and a monotonically increasing
//! **heartbeat**. Rounds exchange full views (member → generation ×
//! heartbeat); entries merge by `(generation, heartbeat)` order, so
//! information only ever moves forward.
//!
//! What this does and does not guarantee: a member marked *up* was heard
//! from — directly or transitively — within the suspicion window; a member
//! marked *down* missed it, or a direct call failed. There is no membership
//! change, no leader, no quorum: ring ownership is untouched by health (a
//! flapping node keeps its arc; forwarding routes around it), so gossip can
//! be wrong for a window without ever making a request fail — the worst
//! case is a wasted forward attempt that the circuit breaker then absorbs.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant, SystemTime};

use nvpim_obs::Json;

/// How many missed gossip intervals mark a member suspect (down).
pub const SUSPECT_INTERVALS: u32 = 4;

/// What this instance believes about one remote member.
#[derive(Debug, Clone)]
struct MemberView {
    generation: u64,
    heartbeat: u64,
    /// When `(generation, heartbeat)` last advanced.
    advanced_at: Instant,
    /// Cleared when a direct call to the member fails, set when any gossip
    /// (direct or relayed) advances its heartbeat.
    reachable: bool,
}

/// One member's health as reported by `/fleet`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemberHealth {
    /// Member address.
    pub addr: String,
    /// Last known generation (0 = never heard from).
    pub generation: u64,
    /// Last known heartbeat.
    pub heartbeat: u64,
    /// Whether the member is currently considered alive.
    pub up: bool,
}

/// This instance's gossip bookkeeping.
pub struct GossipState {
    self_addr: String,
    generation: u64,
    heartbeat: AtomicU64,
    suspect_after: Duration,
    view: Mutex<HashMap<String, MemberView>>,
}

impl std::fmt::Debug for GossipState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GossipState")
            .field("self_addr", &self.self_addr)
            .field("generation", &self.generation)
            .finish_non_exhaustive()
    }
}

impl GossipState {
    /// Fresh state for this instance. `interval` is the gossip period the
    /// driver will run at; the suspicion window is [`SUSPECT_INTERVALS`]
    /// times that (members the fleet has not heard from for that long count
    /// as down).
    #[must_use]
    pub fn new(self_addr: &str, peers: &[String], interval: Duration) -> Self {
        let generation = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map_or(1, |d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX));
        let now = Instant::now();
        let view = peers
            .iter()
            .filter(|p| p.as_str() != self_addr)
            .map(|p| {
                (
                    p.clone(),
                    // Start optimistic: a freshly launched fleet treats its
                    // configured peers as up until the suspicion window
                    // passes without a heartbeat, so startup order does not
                    // produce a burst of false "down"s.
                    MemberView { generation: 0, heartbeat: 0, advanced_at: now, reachable: true },
                )
            })
            .collect();
        GossipState {
            self_addr: self_addr.to_owned(),
            generation,
            heartbeat: AtomicU64::new(0),
            suspect_after: interval.saturating_mul(SUSPECT_INTERVALS),
            view: Mutex::new(view),
        }
    }

    /// This instance's generation (startup wall-clock millis).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Advances and returns this instance's heartbeat (one tick per gossip
    /// round).
    pub fn tick(&self) -> u64 {
        self.heartbeat.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The full local view as a gossip document: who this is, its own
    /// generation × heartbeat, and everything it knows about the others.
    #[must_use]
    pub fn local_doc(&self) -> Json {
        let view = self.view.lock().expect("gossip view poisoned");
        let mut members: Vec<Json> = view
            .iter()
            .map(|(addr, m)| {
                Json::object()
                    .with("addr", addr.as_str())
                    .with("generation", m.generation)
                    .with("heartbeat", m.heartbeat)
            })
            .collect();
        members.push(
            Json::object()
                .with("addr", self.self_addr.as_str())
                .with("generation", self.generation)
                .with("heartbeat", self.heartbeat.load(Ordering::Relaxed)),
        );
        members.sort_by_key(|m| m.get("addr").and_then(Json::as_str).unwrap_or("").to_owned());
        Json::object().with("from", self.self_addr.as_str()).with("view", Json::Arr(members))
    }

    /// Merges a remote gossip document into the local view. Entries move
    /// strictly forward: a remote `(generation, heartbeat)` only replaces a
    /// smaller local one. Advancing an entry re-marks the member reachable
    /// (someone, somewhere, heard from it recently enough to relay news).
    /// Unknown addresses are ignored — membership is static.
    pub fn merge(&self, doc: &Json) {
        let Some(entries) = doc.get("view").and_then(Json::as_array) else { return };
        let mut view = self.view.lock().expect("gossip view poisoned");
        for entry in entries {
            let Some(addr) = entry.get("addr").and_then(Json::as_str) else { continue };
            if addr == self.self_addr {
                continue;
            }
            let Some(member) = view.get_mut(addr) else { continue };
            let generation = entry.get("generation").and_then(Json::as_u64).unwrap_or(0);
            let heartbeat = entry.get("heartbeat").and_then(Json::as_u64).unwrap_or(0);
            if (generation, heartbeat) > (member.generation, member.heartbeat) {
                member.generation = generation;
                member.heartbeat = heartbeat;
                member.advanced_at = Instant::now();
                member.reachable = true;
            }
        }
    }

    /// Records that a direct call to `addr` failed: the member is marked
    /// unreachable immediately (gossip from third parties can still revive
    /// it by advancing its heartbeat).
    pub fn mark_unreachable(&self, addr: &str) {
        let mut view = self.view.lock().expect("gossip view poisoned");
        if let Some(member) = view.get_mut(addr) {
            member.reachable = false;
        }
    }

    /// Whether `addr` is currently considered up. Unknown members are down.
    #[must_use]
    pub fn is_up(&self, addr: &str) -> bool {
        let view = self.view.lock().expect("gossip view poisoned");
        view.get(addr).is_some_and(|m| m.reachable && m.advanced_at.elapsed() < self.suspect_after)
    }

    /// Health of every known remote member, sorted by address.
    #[must_use]
    pub fn members(&self) -> Vec<MemberHealth> {
        let view = self.view.lock().expect("gossip view poisoned");
        let mut members: Vec<MemberHealth> = view
            .iter()
            .map(|(addr, m)| MemberHealth {
                addr: addr.clone(),
                generation: m.generation,
                heartbeat: m.heartbeat,
                up: m.reachable && m.advanced_at.elapsed() < self.suspect_after,
            })
            .collect();
        members.sort_by(|a, b| a.addr.cmp(&b.addr));
        members
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peers() -> Vec<String> {
        vec!["a:1".into(), "b:2".into(), "c:3".into()]
    }

    fn doc_for(addr: &str, generation: u64, heartbeat: u64) -> Json {
        Json::object().with("from", addr).with(
            "view",
            vec![Json::object()
                .with("addr", addr)
                .with("generation", generation)
                .with("heartbeat", heartbeat)],
        )
    }

    #[test]
    fn fresh_peers_start_optimistically_up_then_suspect_without_news() {
        let state = GossipState::new("a:1", &peers(), Duration::from_millis(10));
        assert!(state.is_up("b:2"));
        std::thread::sleep(Duration::from_millis(50));
        assert!(!state.is_up("b:2"), "no heartbeat within the window = down");
    }

    #[test]
    fn merge_moves_entries_forward_only() {
        let state = GossipState::new("a:1", &peers(), Duration::from_secs(60));
        state.merge(&doc_for("b:2", 100, 7));
        let b = state.members().into_iter().find(|m| m.addr == "b:2").unwrap();
        assert_eq!((b.generation, b.heartbeat), (100, 7));
        // A stale replay cannot rewind it.
        state.merge(&doc_for("b:2", 100, 3));
        let b = state.members().into_iter().find(|m| m.addr == "b:2").unwrap();
        assert_eq!((b.generation, b.heartbeat), (100, 7));
        // A restarted incarnation (higher generation, lower heartbeat) wins.
        state.merge(&doc_for("b:2", 200, 1));
        let b = state.members().into_iter().find(|m| m.addr == "b:2").unwrap();
        assert_eq!((b.generation, b.heartbeat), (200, 1));
    }

    #[test]
    fn direct_failure_marks_down_and_relayed_news_revives() {
        let state = GossipState::new("a:1", &peers(), Duration::from_secs(60));
        state.merge(&doc_for("b:2", 5, 1));
        assert!(state.is_up("b:2"));
        state.mark_unreachable("b:2");
        assert!(!state.is_up("b:2"));
        // c relays a *newer* heartbeat for b — b is alive somewhere.
        state.merge(&doc_for("b:2", 5, 2));
        assert!(state.is_up("b:2"));
        // Replaying the same heartbeat after another failure does nothing.
        state.mark_unreachable("b:2");
        state.merge(&doc_for("b:2", 5, 2));
        assert!(!state.is_up("b:2"));
    }

    #[test]
    fn unknown_and_self_entries_are_ignored() {
        let state = GossipState::new("a:1", &peers(), Duration::from_secs(60));
        state.merge(&doc_for("z:9", 1, 1));
        assert!(!state.is_up("z:9"), "membership is static");
        state.merge(&doc_for("a:1", u64::MAX, u64::MAX));
        assert!(state.members().iter().all(|m| m.addr != "a:1"), "self never tracked");
    }

    #[test]
    fn local_doc_carries_self_and_every_member() {
        let state = GossipState::new("a:1", &peers(), Duration::from_secs(1));
        state.tick();
        state.tick();
        let doc = state.local_doc();
        let view = doc.get("view").and_then(Json::as_array).unwrap();
        assert_eq!(view.len(), 3, "self + two remote members");
        let own = view
            .iter()
            .find(|m| m.get("addr").and_then(Json::as_str) == Some("a:1"))
            .expect("self entry present");
        assert_eq!(own.get("heartbeat").and_then(Json::as_u64), Some(2));
        assert_eq!(own.get("generation").and_then(Json::as_u64), Some(state.generation()));
    }
}
