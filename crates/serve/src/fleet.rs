//! The fleet coordinator: one logical cache over many instances.
//!
//! Determinism makes this sound: a canonical request fully determines its
//! result bytes (PR 4), so *any* member can compute *any* request and the
//! bytes are interchangeable. Sharding is therefore purely an efficiency
//! decision — each key has one [`HashRing`] owner whose memory+disk cache
//! accumulates it, non-owners forward, and the worst possible outcome of
//! any routing mistake is a redundant computation, never a wrong answer.
//!
//! The [`Fleet`] owns the routing state: the ring, one [`Peer`] (with its
//! circuit breaker) per remote member, the [`GossipState`] health view, and
//! the hot-entry tracker that decides when an owner pushes a replica to its
//! ring successors. The server wires these into the request path; see
//! `server.rs` for the forward → replica-probe → local-compute ladder that
//! guarantees a fleet request never does worse than a single-node one.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use nvpim_obs::Json;

use crate::gossip::GossipState;
use crate::peer::Peer;
use crate::ring::{HashRing, DEFAULT_VNODES};

/// Upper bound on tracked hot-candidate keys; past it the tracker resets
/// (replication is an optimization — losing counts costs a re-warm, not
/// correctness).
const MAX_HOT_TRACKED: usize = 65_536;

/// Fleet membership and tuning, normally from `nvpim-serve --peers`.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// The address this instance is known by on the ring (its `--addr`, or
    /// `--advertise` when binding a wildcard).
    pub advertise: String,
    /// Every other member's advertised address.
    pub peers: Vec<String>,
    /// Ring successors a hot entry is replicated to.
    pub replicas: usize,
    /// Cache hits on an owned entry before it is pushed to the replicas.
    pub hot_threshold: u64,
    /// Virtual nodes per member.
    pub vnodes: usize,
    /// Connect *and* read timeout for peer calls, in milliseconds.
    pub peer_timeout_ms: u64,
    /// Gossip period in milliseconds (`0` disables the gossip thread).
    pub gossip_interval_ms: u64,
}

impl FleetConfig {
    /// A fleet config for `advertise` plus `peers` with the default tuning
    /// (1 replica, hot threshold 3, 64 vnodes, 1500 ms peer timeout,
    /// 500 ms gossip).
    #[must_use]
    pub fn new(advertise: impl Into<String>, peers: Vec<String>) -> Self {
        FleetConfig {
            advertise: advertise.into(),
            peers,
            replicas: 1,
            hot_threshold: 3,
            vnodes: DEFAULT_VNODES,
            peer_timeout_ms: 1500,
            gossip_interval_ms: 500,
        }
    }
}

/// Where a key's request should be served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Route {
    /// This instance owns the key.
    Local,
    /// The member at this address owns the key.
    Forward(String),
}

/// Monotonic fleet counters, mirrored into the observer by the server (the
/// atomics exist so background threads and `/fleet` can read them without
/// a metrics snapshot).
#[derive(Debug, Default)]
pub struct FleetCounters {
    /// Requests proxied to their owner.
    pub forwarded: AtomicU64,
    /// Replica pushes sent (one per receiving peer).
    pub replicated: AtomicU64,
    /// Replica pushes received and stored.
    pub replica_received: AtomicU64,
    /// Requests served from a replica probe after their owner failed.
    pub replica_hits: AtomicU64,
    /// Requests computed locally because every remote option failed.
    pub fallback_local: AtomicU64,
    /// Requests rejected by the `X-Fleet-Hop` loop guard.
    pub loop_rejected: AtomicU64,
    /// Gossip rounds completed.
    pub gossip_rounds: AtomicU64,
}

impl FleetCounters {
    fn to_json(&self) -> Json {
        Json::object()
            .with("forwarded", self.forwarded.load(Ordering::Relaxed))
            .with("replicated", self.replicated.load(Ordering::Relaxed))
            .with("replica_received", self.replica_received.load(Ordering::Relaxed))
            .with("replica_hits", self.replica_hits.load(Ordering::Relaxed))
            .with("fallback_local", self.fallback_local.load(Ordering::Relaxed))
            .with("loop_rejected", self.loop_rejected.load(Ordering::Relaxed))
            .with("gossip_rounds", self.gossip_rounds.load(Ordering::Relaxed))
    }
}

/// The per-instance fleet state.
pub struct Fleet {
    config: FleetConfig,
    ring: HashRing,
    /// Remote members, sorted by address (parallel to nothing — looked up
    /// by address).
    peers: Vec<Peer>,
    gossip: GossipState,
    /// Hit counts for owned keys that have not crossed the hot threshold
    /// yet; crossing removes the entry and triggers replication.
    hot: Mutex<HashMap<u64, u64>>,
    next_gossip_target: AtomicUsize,
    /// Monotonic event counters (also mirrored into the observer).
    pub counters: FleetCounters,
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("advertise", &self.config.advertise)
            .field("members", &self.ring.members().len())
            .finish_non_exhaustive()
    }
}

impl Fleet {
    /// Builds the fleet state: the ring over `advertise + peers`, one
    /// breaker-guarded [`Peer`] per remote member, and a fresh gossip view.
    ///
    /// # Errors
    ///
    /// Fails when a peer address does not resolve, when `advertise` is
    /// listed in `peers`, or when `replicas`/`hot_threshold` are zero.
    pub fn new(config: FleetConfig) -> Result<Fleet, String> {
        if config.peers.contains(&config.advertise) {
            return Err(format!(
                "peer list must not contain this instance's own address {}",
                config.advertise
            ));
        }
        if config.replicas == 0 {
            return Err("--replicas must be positive (a fleet without replication \
                        still needs a replica budget for failover probes)"
                .into());
        }
        if config.hot_threshold == 0 {
            return Err("--hot-threshold must be positive".into());
        }
        let timeout = Duration::from_millis(config.peer_timeout_ms.max(1));
        let mut peers = config
            .peers
            .iter()
            .map(|addr| Peer::new(addr, timeout))
            .collect::<Result<Vec<_>, _>>()?;
        peers.sort_by(|a, b| a.addr().cmp(b.addr()));
        let mut members: Vec<String> = config.peers.clone();
        members.push(config.advertise.clone());
        let ring = HashRing::new(&members, config.vnodes);
        let gossip = GossipState::new(
            &config.advertise,
            &config.peers,
            Duration::from_millis(config.gossip_interval_ms.max(1)),
        );
        Ok(Fleet {
            ring,
            peers,
            gossip,
            hot: Mutex::new(HashMap::new()),
            next_gossip_target: AtomicUsize::new(0),
            counters: FleetCounters::default(),
            config,
        })
    }

    /// This instance's ring identity.
    #[must_use]
    pub fn advertise(&self) -> &str {
        &self.config.advertise
    }

    /// The fleet tuning this instance runs with.
    #[must_use]
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The shared ring.
    #[must_use]
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// The health view.
    #[must_use]
    pub fn gossip(&self) -> &GossipState {
        &self.gossip
    }

    /// Where `key` should be served from.
    #[must_use]
    pub fn route(&self, key: u64) -> Route {
        let owner = self.ring.owner_of(key);
        if owner == self.config.advertise {
            Route::Local
        } else {
            Route::Forward(owner.to_owned())
        }
    }

    /// Whether this instance owns `key`.
    #[must_use]
    pub fn owns(&self, key: u64) -> bool {
        self.route(key) == Route::Local
    }

    /// The peer at `addr`, if it is a member.
    #[must_use]
    pub fn peer(&self, addr: &str) -> Option<&Peer> {
        self.peers.iter().find(|p| p.addr() == addr)
    }

    /// The members holding `key`'s replicas: up to `replicas` ring
    /// successors of the owner, excluding this instance.
    #[must_use]
    pub fn replica_peers(&self, key: u64) -> Vec<&Peer> {
        self.ring
            .successors_of(key, self.config.replicas)
            .into_iter()
            .filter_map(|addr| self.peer(addr))
            .collect()
    }

    /// Whether this instance is in `key`'s replica set.
    #[must_use]
    pub fn is_replica_for(&self, key: u64) -> bool {
        self.ring
            .successors_of(key, self.config.replicas)
            .iter()
            .any(|&addr| addr == self.config.advertise)
    }

    /// Records one cache hit on an owned key; returns `true` exactly when
    /// the hit count crosses the hot threshold (the caller should push
    /// replicas now). The entry is removed on crossing, so a long-lived hot
    /// key re-arms and re-replicates only after another full threshold of
    /// hits — harmless, since replication is idempotent.
    #[must_use]
    pub fn note_owned_hit(&self, key: u64) -> bool {
        let mut hot = self.hot.lock().expect("hot tracker poisoned");
        if hot.len() >= MAX_HOT_TRACKED {
            hot.clear();
        }
        let count = hot.entry(key).or_insert(0);
        *count += 1;
        if *count >= self.config.hot_threshold {
            hot.remove(&key);
            true
        } else {
            false
        }
    }

    /// The next gossip target, round-robin over the remote members. `None`
    /// for a fleet of one.
    #[must_use]
    pub fn next_gossip_peer(&self) -> Option<&Peer> {
        if self.peers.is_empty() {
            return None;
        }
        let index = self.next_gossip_target.fetch_add(1, Ordering::Relaxed) % self.peers.len();
        Some(&self.peers[index])
    }

    /// The `/fleet` document: identity, ring layout, per-peer health and
    /// breaker state, and the forward/replica counters.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let fractions = self.ring.ownership_fractions();
        let members: Vec<Json> = self
            .ring
            .members()
            .iter()
            .zip(&fractions)
            .map(|(addr, &fraction)| {
                Json::object()
                    .with("addr", addr.as_str())
                    .with("owned_fraction", Json::Num(fraction))
                    .with("is_self", addr == &self.config.advertise)
            })
            .collect();
        let health = self.gossip.members();
        let peers: Vec<Json> = self
            .peers
            .iter()
            .map(|peer| {
                let h = health.iter().find(|m| m.addr == peer.addr());
                peer.to_json()
                    .with("up", h.is_some_and(|m| m.up))
                    .with("generation", h.map_or(0, |m| m.generation))
                    .with("heartbeat", h.map_or(0, |m| m.heartbeat))
            })
            .collect();
        Json::object()
            .with("self", self.config.advertise.as_str())
            .with("generation", self.gossip.generation())
            .with(
                "ring",
                Json::object()
                    .with("vnodes", self.config.vnodes)
                    .with("replicas", self.config.replicas)
                    .with("hot_threshold", self.config.hot_threshold)
                    .with("members", Json::Arr(members)),
            )
            .with("peers", Json::Arr(peers))
            .with("counters", self.counters.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn local_fleet(n: usize) -> Fleet {
        // 127.0.0.1 ports resolve without the network; nothing needs to be
        // listening for routing-state tests.
        let members: Vec<String> = (0..n).map(|i| format!("127.0.0.1:{}", 9100 + i)).collect();
        let config = FleetConfig::new(members[0].clone(), members[1..].to_vec());
        Fleet::new(config).unwrap()
    }

    #[test]
    fn every_member_computes_the_same_owner() {
        let members: Vec<String> = (0..3).map(|i| format!("127.0.0.1:{}", 9200 + i)).collect();
        let fleets: Vec<Fleet> = (0..3)
            .map(|i| {
                let peers: Vec<String> = members
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, m)| m.clone())
                    .collect();
                Fleet::new(FleetConfig::new(members[i].clone(), peers)).unwrap()
            })
            .collect();
        for key in [1u64, 99, 0xfeed, u64::MAX / 3] {
            let owners: Vec<&str> = fleets.iter().map(|f| f.ring().owner_of(key)).collect();
            assert!(owners.windows(2).all(|w| w[0] == w[1]), "{owners:?}");
            // Exactly one member routes Local.
            let locals = fleets.iter().filter(|f| f.owns(key)).count();
            assert_eq!(locals, 1);
        }
    }

    #[test]
    fn replica_set_excludes_self_and_matches_ring_successors() {
        let fleet = local_fleet(3);
        for key in 0..50u64 {
            let successors = fleet.ring().successors_of(key, 1);
            let peers = fleet.replica_peers(key);
            if successors[0] == fleet.advertise() {
                assert!(peers.is_empty());
                assert!(fleet.is_replica_for(key));
            } else {
                assert_eq!(peers.len(), 1);
                assert_eq!(peers[0].addr(), successors[0]);
                assert!(!fleet.is_replica_for(key));
            }
        }
    }

    #[test]
    fn hot_tracker_fires_exactly_on_the_threshold_and_rearms() {
        let members = vec!["127.0.0.1:9301".to_owned()];
        let mut config = FleetConfig::new("127.0.0.1:9300", members);
        config.hot_threshold = 3;
        let fleet = Fleet::new(config).unwrap();
        assert!(!fleet.note_owned_hit(7));
        assert!(!fleet.note_owned_hit(7));
        assert!(fleet.note_owned_hit(7), "third hit crosses the threshold");
        assert!(!fleet.note_owned_hit(7), "counter re-arms from zero");
    }

    #[test]
    fn config_validation_rejects_self_in_peers_and_zero_knobs() {
        let bad = FleetConfig::new("127.0.0.1:1", vec!["127.0.0.1:1".into()]);
        assert!(Fleet::new(bad).unwrap_err().contains("own address"));
        let mut zero_rep = FleetConfig::new("127.0.0.1:1", vec!["127.0.0.1:2".into()]);
        zero_rep.replicas = 0;
        assert!(Fleet::new(zero_rep).is_err());
        let mut zero_hot = FleetConfig::new("127.0.0.1:1", vec!["127.0.0.1:2".into()]);
        zero_hot.hot_threshold = 0;
        assert!(Fleet::new(zero_hot).is_err());
    }

    #[test]
    fn fleet_doc_names_members_peers_and_counters() {
        let fleet = local_fleet(3);
        fleet.counters.forwarded.fetch_add(2, Ordering::Relaxed);
        let doc = fleet.to_json();
        assert_eq!(doc.get("self").and_then(Json::as_str), Some(fleet.advertise()));
        let members = doc.get("ring").and_then(|r| r.get("members")).and_then(Json::as_array);
        assert_eq!(members.map(<[Json]>::len), Some(3));
        let peers = doc.get("peers").and_then(Json::as_array).unwrap();
        assert_eq!(peers.len(), 2);
        assert_eq!(
            doc.get("counters").and_then(|c| c.get("forwarded")).and_then(Json::as_u64),
            Some(2)
        );
    }

    #[test]
    fn gossip_targets_rotate_round_robin() {
        let fleet = local_fleet(3);
        let a = fleet.next_gossip_peer().unwrap().addr().to_owned();
        let b = fleet.next_gossip_peer().unwrap().addr().to_owned();
        let c = fleet.next_gossip_peer().unwrap().addr().to_owned();
        assert_ne!(a, b);
        assert_eq!(a, c, "two remote peers alternate");
    }
}
