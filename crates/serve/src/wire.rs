//! The canonical JSON wire format shared by the service and the CLI.
//!
//! Everything here renders through [`nvpim_obs::Json`], whose objects are
//! `BTreeMap`s — field order is deterministic, so a result document for a
//! given request is byte-identical across runs, servers, and the `repro
//! --json` path. That byte-stability is what makes the content-addressed
//! cache sound *and* testable (the integration suite asserts identical
//! bodies for identical requests).

use nvpim_core::{EpochSample, LifetimeModel, SimResult};
use nvpim_obs::Json;

use crate::hash::key_hex;
use crate::request::SimRequest;

/// Schema tag of a single-simulation result document.
pub const RESULT_SCHEMA: &str = "nvpim.serve-result/v1";

/// Schema tag of a `repro --json` report envelope.
pub const REPORT_SCHEMA: &str = "nvpim.report/v1";

/// One epoch of the wear trajectory as wire JSON (shared by result
/// documents and `RunManifest`s).
#[must_use]
pub fn epoch_sample_json(sample: &EpochSample) -> Json {
    Json::object()
        .with("iteration", sample.iteration)
        .with("epoch", sample.epoch)
        .with("max_writes", sample.max_writes)
        .with("p99_writes", sample.p99_writes)
        .with("mean_writes", Json::Num(sample.mean_writes))
        .with("gini", Json::Num(sample.gini))
        .with("remaps", sample.remaps)
}

/// Renders the full result document for one served simulation.
#[must_use]
pub fn result_json(request: &SimRequest, result: &SimResult) -> Json {
    let model = LifetimeModel::for_technology(request.technology);
    let lifetime = model.lifetime(result);
    let mut body = Json::object()
        .with("iterations", result.iterations)
        .with("steps_per_iteration", result.steps_per_iteration)
        .with("total_writes", result.total_writes())
        .with("total_reads", result.total_reads())
        .with("max_writes", result.wear.max_writes())
        .with("max_writes_per_iteration", result.max_writes_per_iteration());
    if !result.series.is_empty() {
        let samples: Vec<Json> = result.series.iter().map(epoch_sample_json).collect();
        body = body.with("series", Json::Arr(samples));
    }
    Json::object()
        .with("schema", RESULT_SCHEMA)
        .with("key", key_hex(request.cache_key()))
        .with("request", request.canonical_json())
        .with("result", body)
        .with(
            "lifetime",
            Json::object()
                .with("technology", request.technology.label())
                .with("endurance_writes", model.endurance())
                .with("op_latency_ns", model.op_latency_ns())
                .with("iterations", lifetime.iterations)
                .with("seconds", lifetime.seconds)
                .with("days", lifetime.days())
                .with("years", lifetime.years()),
        )
}

/// The rendered single-line body served (and cached) for a request.
#[must_use]
pub fn result_body(request: &SimRequest, result: &SimResult) -> String {
    result_json(request, result).render()
}

/// Wraps a text report in the machine-readable envelope `repro --json`
/// emits: the command, its configuration, and the report body, under the
/// same deterministic encoder the service uses.
#[must_use]
pub fn report_envelope(command: &str, config: Json, report: &str) -> Json {
    Json::object()
        .with("schema", REPORT_SCHEMA)
        .with("command", command)
        .with("config", config)
        .with("report", report)
}

#[cfg(test)]
mod tests {
    use std::str::FromStr as _;

    use super::*;
    use nvpim_core::{EnduranceSimulator, SimConfig};

    fn tiny_request() -> SimRequest {
        SimRequest::from_str(
            r#"{"workload": {"kind": "mul", "rows": 128, "lanes": 8}, "iterations": 20}"#,
        )
        .unwrap()
    }

    #[test]
    fn result_bodies_are_deterministic() {
        let req = tiny_request();
        let run = || {
            let sim = EnduranceSimulator::new(req.sim_config());
            result_body(&req, &sim.run(&req.build_workload(), req.config))
        };
        assert_eq!(run(), run(), "same request must serialize to identical bytes");
    }

    #[test]
    fn result_body_parses_and_carries_the_key() {
        let req = tiny_request();
        let sim = EnduranceSimulator::new(req.sim_config());
        let body = result_body(&req, &sim.run(&req.build_workload(), req.config));
        let doc = nvpim_obs::json::parse(&body).unwrap();
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(RESULT_SCHEMA));
        assert_eq!(doc.get("key").and_then(Json::as_str), Some(key_hex(req.cache_key()).as_str()));
        assert!(doc.get("result").and_then(|r| r.get("total_writes")).is_some());
        assert!(doc.get("lifetime").and_then(|l| l.get("days")).is_some());
    }

    #[test]
    fn sim_config_honors_request_knobs() {
        let req = SimRequest::from_str(
            r#"{"workload": "mul", "iterations": 7, "period": 0, "seed": 9, "track_reads": true}"#,
        )
        .unwrap();
        let cfg: SimConfig = req.sim_config();
        assert_eq!(cfg.iterations, 7);
        assert_eq!(cfg.schedule.period(), None);
        assert_eq!(cfg.seed, 9);
        assert!(cfg.track_reads);
    }

    #[test]
    fn series_rides_in_the_result_when_requested() {
        let req = SimRequest::from_str(
            r#"{"workload": {"kind": "mul", "rows": 128, "lanes": 8},
                "iterations": 20, "period": 4, "series": true}"#,
        )
        .unwrap();
        let sim = EnduranceSimulator::new(req.sim_config());
        let result = sim.run(&req.build_workload(), req.config);
        let doc = result_json(&req, &result);
        let series = doc
            .get("result")
            .and_then(|r| r.get("series"))
            .and_then(Json::as_array)
            .expect("series array present");
        assert_eq!(series.len(), 5, "20 iterations / period 4");
        let last = series.last().unwrap();
        assert_eq!(last.get("iteration").and_then(Json::as_u64), Some(20));
        assert_eq!(last.get("max_writes").and_then(Json::as_u64), Some(result.wear.max_writes()));
        assert!(last.get("gini").is_some());

        // And stays out when not requested — cached plain results keep
        // their historical byte-exact shape.
        let plain = tiny_request();
        let sim = EnduranceSimulator::new(plain.sim_config());
        let doc = result_json(&plain, &sim.run(&plain.build_workload(), plain.config));
        assert!(doc.get("result").and_then(|r| r.get("series")).is_none());
    }

    #[test]
    fn report_envelope_round_trips() {
        let env = report_envelope("fig17", Json::object().with("iterations", 100u64), "body\n");
        let doc = nvpim_obs::json::parse(&env.render_pretty()).unwrap();
        assert_eq!(doc.get("command").and_then(Json::as_str), Some("fig17"));
        assert_eq!(doc.get("report").and_then(Json::as_str), Some("body\n"));
    }
}
