//! The `nvpim-serve` binary: run the simulation service from the shell.
//!
//! ```text
//! nvpim-serve [--addr HOST:PORT] [--workers N] [--queue-depth N]
//!             [--timeout-ms MS] [--cache-entries N] [--cache-dir DIR]
//!             [--cache-max-bytes N] [--cache-max-age S]
//!             [--peers A:P,B:P,...] [--advertise HOST:PORT]
//!             [--replicas N] [--hot-threshold N]
//! ```
//!
//! Prints one `listening on <addr>` line once bound (scripts wait for it),
//! then serves until `POST /shutdown` drains the queue. Passing `--peers`
//! makes this instance a fleet member: it owns a consistent-hash shard of
//! the key space, forwards non-owned requests to their owner, and accepts
//! hot-entry replicas from peers.

use std::path::PathBuf;
use std::process::ExitCode;

use nvpim_serve::{FleetConfig, Server, ServerConfig};

fn main() -> ExitCode {
    let mut config = ServerConfig { addr: "127.0.0.1:7878".into(), ..ServerConfig::default() };
    let mut peers: Vec<String> = Vec::new();
    let mut advertise: Option<String> = None;
    let mut replicas: Option<usize> = None;
    let mut hot_threshold: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            "--addr" => match args.next() {
                Some(v) => config.addr = v,
                None => return missing(&flag),
            },
            "--workers" => match parse_num(args.next(), &flag) {
                Ok(v) => config.workers = v,
                Err(code) => return code,
            },
            "--queue-depth" => match parse_num(args.next(), &flag) {
                Ok(v) if v > 0 => config.queue_depth = v,
                Ok(_) => return invalid(&flag, "must be positive"),
                Err(code) => return code,
            },
            "--timeout-ms" => match parse_num(args.next(), &flag) {
                Ok(v) => config.timeout_ms = v as u64,
                Err(code) => return code,
            },
            "--cache-entries" => match parse_num(args.next(), &flag) {
                Ok(v) if v > 0 => config.cache_entries = v,
                Ok(_) => return invalid(&flag, "must be positive"),
                Err(code) => return code,
            },
            "--cache-dir" => match args.next() {
                Some(v) => config.cache_dir = Some(PathBuf::from(v)),
                None => return missing(&flag),
            },
            "--cache-max-bytes" => match parse_num(args.next(), &flag) {
                Ok(v) => config.cache_max_bytes = v as u64,
                Err(code) => return code,
            },
            "--cache-max-age" => match parse_num(args.next(), &flag) {
                Ok(v) => config.cache_max_age_s = v as u64,
                Err(code) => return code,
            },
            "--peers" => match args.next() {
                Some(v) => {
                    peers.extend(
                        v.split(',').map(str::trim).filter(|p| !p.is_empty()).map(String::from),
                    );
                }
                None => return missing(&flag),
            },
            "--advertise" => match args.next() {
                Some(v) => advertise = Some(v),
                None => return missing(&flag),
            },
            "--replicas" => match parse_num(args.next(), &flag) {
                Ok(v) if v > 0 => replicas = Some(v),
                Ok(_) => return invalid(&flag, "must be positive"),
                Err(code) => return code,
            },
            "--hot-threshold" => match parse_num(args.next(), &flag) {
                Ok(v) if v > 0 => hot_threshold = Some(v as u64),
                Ok(_) => return invalid(&flag, "must be positive"),
                Err(code) => return code,
            },
            other => {
                eprintln!("nvpim-serve: unknown flag {other}");
                print_help();
                return ExitCode::FAILURE;
            }
        }
    }

    if !peers.is_empty() {
        // The ring identity must be the address peers can actually dial:
        // the bind address unless --advertise overrides it (wildcard binds).
        let advertise = advertise.unwrap_or_else(|| config.addr.clone());
        let mut fleet = FleetConfig::new(advertise, peers);
        if let Some(replicas) = replicas {
            fleet.replicas = replicas;
        }
        if let Some(hot_threshold) = hot_threshold {
            fleet.hot_threshold = hot_threshold;
        }
        config.fleet = Some(fleet);
    } else if advertise.is_some() || replicas.is_some() || hot_threshold.is_some() {
        eprintln!("nvpim-serve: --advertise/--replicas/--hot-threshold need --peers");
        return ExitCode::FAILURE;
    }

    let handle = match Server::start(config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("nvpim-serve: cannot start: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", handle.addr());
    handle.join();
    println!("drained, exiting");
    ExitCode::SUCCESS
}

fn parse_num(value: Option<String>, flag: &str) -> Result<usize, ExitCode> {
    match value {
        Some(v) => v.parse().map_err(|_| {
            eprintln!("nvpim-serve: {flag} expects a non-negative integer, got {v:?}");
            ExitCode::FAILURE
        }),
        None => {
            eprintln!("nvpim-serve: {flag} requires a value");
            Err(ExitCode::FAILURE)
        }
    }
}

fn missing(flag: &str) -> ExitCode {
    eprintln!("nvpim-serve: {flag} requires a value");
    ExitCode::FAILURE
}

fn invalid(flag: &str, why: &str) -> ExitCode {
    eprintln!("nvpim-serve: {flag} {why}");
    ExitCode::FAILURE
}

fn print_help() {
    println!(
        "nvpim-serve — HTTP service for nvpim endurance simulations

USAGE:
    nvpim-serve [OPTIONS]

OPTIONS:
    --addr HOST:PORT     bind address (default 127.0.0.1:7878; port 0 = ephemeral)
    --workers N          worker threads, 0 = auto (default 0)
    --queue-depth N      pending-connection bound before 429 (default 64)
    --timeout-ms MS      per-request budget for /simulate, 0 = unlimited (default 30000)
    --cache-entries N    in-memory result-cache capacity (default 256)
    --cache-dir DIR      enable on-disk cache spill, manifests, and event log
    --cache-max-bytes N  spill-directory byte budget, 0 = unlimited (default 0)
    --cache-max-age S    spill-entry age limit in seconds, 0 = unlimited (default 0)
    --peers LIST         comma-separated peer addresses; enables fleet mode
    --advertise ADDR     ring identity when binding a wildcard (default --addr)
    --replicas N         ring successors hot entries replicate to (default 1)
    --hot-threshold N    cache hits before an entry replicates (default 3)
    -h, --help           this help

ENDPOINTS:
    GET  /           service index          GET  /health    liveness + drain state
    GET  /metrics    counters + cache stats POST /simulate  one simulation (JSON body)
    POST /batch      NDJSON-streamed sweep  POST /shutdown  graceful drain
    GET  /fleet      ring + peer health     POST /fleet/gossip, /fleet/replicate (peer RPC)"
    );
}
