//! The `nvpim-serve` binary: run the simulation service from the shell.
//!
//! ```text
//! nvpim-serve [--addr HOST:PORT] [--workers N] [--queue-depth N]
//!             [--timeout-ms MS] [--cache-entries N] [--cache-dir DIR]
//! ```
//!
//! Prints one `listening on <addr>` line once bound (scripts wait for it),
//! then serves until `POST /shutdown` drains the queue.

use std::path::PathBuf;
use std::process::ExitCode;

use nvpim_serve::{Server, ServerConfig};

fn main() -> ExitCode {
    let mut config = ServerConfig { addr: "127.0.0.1:7878".into(), ..ServerConfig::default() };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            "--addr" => match args.next() {
                Some(v) => config.addr = v,
                None => return missing(&flag),
            },
            "--workers" => match parse_num(args.next(), &flag) {
                Ok(v) => config.workers = v,
                Err(code) => return code,
            },
            "--queue-depth" => match parse_num(args.next(), &flag) {
                Ok(v) if v > 0 => config.queue_depth = v,
                Ok(_) => return invalid(&flag, "must be positive"),
                Err(code) => return code,
            },
            "--timeout-ms" => match parse_num(args.next(), &flag) {
                Ok(v) => config.timeout_ms = v as u64,
                Err(code) => return code,
            },
            "--cache-entries" => match parse_num(args.next(), &flag) {
                Ok(v) if v > 0 => config.cache_entries = v,
                Ok(_) => return invalid(&flag, "must be positive"),
                Err(code) => return code,
            },
            "--cache-dir" => match args.next() {
                Some(v) => config.cache_dir = Some(PathBuf::from(v)),
                None => return missing(&flag),
            },
            other => {
                eprintln!("nvpim-serve: unknown flag {other}");
                print_help();
                return ExitCode::FAILURE;
            }
        }
    }

    let handle = match Server::start(config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("nvpim-serve: cannot start: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", handle.addr());
    handle.join();
    println!("drained, exiting");
    ExitCode::SUCCESS
}

fn parse_num(value: Option<String>, flag: &str) -> Result<usize, ExitCode> {
    match value {
        Some(v) => v.parse().map_err(|_| {
            eprintln!("nvpim-serve: {flag} expects a non-negative integer, got {v:?}");
            ExitCode::FAILURE
        }),
        None => {
            eprintln!("nvpim-serve: {flag} requires a value");
            Err(ExitCode::FAILURE)
        }
    }
}

fn missing(flag: &str) -> ExitCode {
    eprintln!("nvpim-serve: {flag} requires a value");
    ExitCode::FAILURE
}

fn invalid(flag: &str, why: &str) -> ExitCode {
    eprintln!("nvpim-serve: {flag} {why}");
    ExitCode::FAILURE
}

fn print_help() {
    println!(
        "nvpim-serve — HTTP service for nvpim endurance simulations

USAGE:
    nvpim-serve [OPTIONS]

OPTIONS:
    --addr HOST:PORT     bind address (default 127.0.0.1:7878; port 0 = ephemeral)
    --workers N          worker threads, 0 = auto (default 0)
    --queue-depth N      pending-connection bound before 429 (default 64)
    --timeout-ms MS      per-request budget for /simulate, 0 = unlimited (default 30000)
    --cache-entries N    in-memory result-cache capacity (default 256)
    --cache-dir DIR      enable on-disk cache spill, manifests, and event log
    -h, --help           this help

ENDPOINTS:
    GET  /           service index          GET  /health    liveness + drain state
    GET  /metrics    counters + cache stats POST /simulate  one simulation (JSON body)
    POST /batch      NDJSON-streamed sweep  POST /shutdown  graceful drain"
    );
}
