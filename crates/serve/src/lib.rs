//! # nvpim-serve — the simulation-as-a-service layer
//!
//! A zero-dependency HTTP/1.1 service (`std::net` only) that accepts
//! endurance-simulation requests as canonical JSON, executes them on a
//! bounded job queue, and returns [`SimResult`]-derived result/lifetime
//! documents. The determinism contract of the simulation stack — identical
//! request, identical bytes — makes the content-addressed result cache
//! sound: a response can be replayed forever without revalidation.
//!
//! Modules:
//!
//! * [`request`] — request parsing, validation, and canonicalization (the
//!   canonical form is the cache identity);
//! * [`hash`] — FNV-1a content hashing of canonical requests;
//! * [`wire`] — the deterministic JSON wire format, shared with
//!   `repro --json`;
//! * [`cache`] — in-memory LRU with optional on-disk spill;
//! * [`http`] — the minimal HTTP/1.1 reader/writer;
//! * [`server`] — accept loop, endpoints, backpressure, timeouts, drain;
//! * [`client`] — a std-only client used by tests, `repro serve-smoke`, and
//!   peer-to-peer fleet calls (typed [`ClientError`] outcomes);
//! * [`ring`] — consistent hashing with virtual nodes over canonical keys;
//! * [`peer`] — per-peer circuit breakers and call statistics;
//! * [`gossip`] — static-membership health gossip (generation × heartbeat);
//! * [`fleet`] — the fleet coordinator tying ring, peers, and gossip into
//!   forward / replicate / fall-back-local routing.
//!
//! [`ClientError`]: client::ClientError
//!
//! [`SimResult`]: nvpim_core::SimResult
//!
//! ## Example
//!
//! ```
//! use nvpim_serve::{Client, Server, ServerConfig};
//!
//! let handle = Server::start(ServerConfig::default()).unwrap();
//! let client = Client::new(handle.addr());
//! let reply = client
//!     .post_json("/simulate", r#"{"workload": "mul", "rows": 128, "lanes": 8, "iterations": 5}"#)
//!     .unwrap();
//! assert_eq!(reply.status, 200);
//! handle.request_shutdown();
//! handle.join();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod fleet;
pub mod gossip;
pub mod hash;
pub mod http;
pub mod peer;
pub mod request;
pub mod ring;
pub mod server;
pub mod wire;

pub use cache::{CacheStats, ResultCache};
pub use client::{Client, ClientError, HttpReply};
pub use fleet::{Fleet, FleetConfig};
pub use request::{RequestError, SimRequest, WorkloadSpec};
pub use ring::HashRing;
pub use server::{Server, ServerConfig, ServerHandle};
