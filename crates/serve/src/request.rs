//! The canonical simulation-request model.
//!
//! A request names one deterministic simulation: workload × balancing
//! configuration × architecture × iterations × re-mapping period × seed.
//! Parsing *normalizes*: defaults are filled in, aliases are resolved
//! (`"mtj"` → `mram`, config strings re-rendered through
//! [`BalanceConfig`]'s display form), and [`SimRequest::canonical_json`]
//! re-emits every field in sorted key order — so two requests that mean the
//! same simulation serialize to the same bytes and share one cache key,
//! however they were spelled on the wire.

use std::str::FromStr;

use nvpim_array::{ArchStyle, ArrayDims};
use nvpim_balance::{BalanceConfig, RemapSchedule};
use nvpim_core::SimConfig;
use nvpim_nvm::Technology;
use nvpim_obs::Json;
use nvpim_workloads::bnn_layer::BnnLayer;
use nvpim_workloads::convolution::Convolution;
use nvpim_workloads::dot_product::DotProduct;
use nvpim_workloads::matvec::MatVec;
use nvpim_workloads::parallel_mul::ParallelMul;
use nvpim_workloads::Workload;

use crate::hash::fnv1a;

/// Upper bound on accepted iteration counts: ten paper-scale runs. Larger
/// requests are rejected up front instead of tying a worker up for hours.
pub const MAX_ITERATIONS: u64 = 1_000_000;

/// Why a request was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestError {
    /// Human-readable description, returned verbatim in the 400 body.
    pub message: String,
}

impl RequestError {
    fn new(message: impl Into<String>) -> Self {
        RequestError { message: message.into() }
    }
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for RequestError {}

/// Which workload family a request simulates, plus its shape parameters.
///
/// Only the parameters a kind actually uses participate in its canonical
/// form (a `mul` request carries no `elements`), so irrelevant wire fields
/// can never split the cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadSpec {
    /// Embarrassingly parallel `width`-bit multiplication (§4 `mul`).
    Mul {
        /// Operand precision in bits.
        width: usize,
    },
    /// `elements`-long dot product at `width` bits (§4 `dot`).
    Dot {
        /// Vector length (power of two, ≤ lanes).
        elements: usize,
        /// Operand precision in bits.
        width: usize,
    },
    /// 2-D convolution with a `filter_rows × filter_cols` filter (§4 `conv`).
    Conv {
        /// Filter height.
        filter_rows: usize,
        /// Filter width.
        filter_cols: usize,
        /// Operand precision in bits.
        width: usize,
    },
    /// Binarized XNOR-popcount layer with `fan_in` inputs per neuron.
    Bnn {
        /// Binary inputs per output neuron.
        fan_in: usize,
    },
    /// `mat_rows × elements` matrix–vector product at `width` bits.
    MatVec {
        /// Matrix row count.
        mat_rows: usize,
        /// Vector length (power of two, ≤ lanes).
        elements: usize,
        /// Operand precision in bits.
        width: usize,
    },
}

impl WorkloadSpec {
    /// Stable kind token used on the wire.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            WorkloadSpec::Mul { .. } => "mul",
            WorkloadSpec::Dot { .. } => "dot",
            WorkloadSpec::Conv { .. } => "conv",
            WorkloadSpec::Bnn { .. } => "bnn",
            WorkloadSpec::MatVec { .. } => "matvec",
        }
    }
}

/// One fully normalized simulation request.
#[derive(Debug, Clone, PartialEq)]
pub struct SimRequest {
    /// Workload family and shape.
    pub workload: WorkloadSpec,
    /// Array rows.
    pub rows: usize,
    /// Array lanes.
    pub lanes: usize,
    /// Balancing configuration.
    pub config: BalanceConfig,
    /// Gate execution semantics.
    pub arch: ArchStyle,
    /// Iterations to replay.
    pub iterations: u64,
    /// Software re-mapping period (`0` = never re-map).
    pub period: u64,
    /// RNG seed for the balancing strategies.
    pub seed: u64,
    /// Whether to also accumulate per-cell read counts.
    pub track_reads: bool,
    /// Whether to sample the per-epoch wear trajectory into the result.
    pub series: bool,
    /// Device technology for the lifetime model.
    pub technology: Technology,
    /// Per-request wall-clock budget override in milliseconds (`None` =
    /// server default). Deliberately *excluded* from the canonical form and
    /// cache key: it directs execution, it does not change the result.
    pub timeout_ms: Option<u64>,
}

fn get_usize(doc: &Json, key: &str, default: usize) -> Result<usize, RequestError> {
    match doc.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .map(|n| n as usize)
            .ok_or_else(|| RequestError::new(format!("`{key}` must be a non-negative integer"))),
    }
}

/// Workload parameters may live inside the workload object or — for the
/// `"workload": "mul"` shorthand — at the top level of the request; the
/// workload object wins when both are present.
fn get_dim(wl: &Json, doc: &Json, key: &str, default: usize) -> Result<usize, RequestError> {
    if wl.get(key).is_some() {
        get_usize(wl, key, default)
    } else {
        get_usize(doc, key, default)
    }
}

fn get_u64(doc: &Json, key: &str, default: u64) -> Result<u64, RequestError> {
    match doc.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| RequestError::new(format!("`{key}` must be a non-negative integer"))),
    }
}

fn get_bool(doc: &Json, key: &str, default: bool) -> Result<bool, RequestError> {
    match doc.get(key) {
        None => Ok(default),
        Some(Json::Bool(b)) => Ok(*b),
        Some(_) => Err(RequestError::new(format!("`{key}` must be a boolean"))),
    }
}

impl SimRequest {
    /// Parses and validates a wire-format request document.
    ///
    /// Every field except the workload kind has a documented default, so
    /// `{"workload": {"kind": "mul"}}` is a complete request. Validation
    /// mirrors the workload constructors' invariants and returns a
    /// [`RequestError`] (HTTP 400) instead of panicking the worker.
    pub fn from_json(doc: &Json) -> Result<SimRequest, RequestError> {
        if !matches!(doc, Json::Obj(_)) {
            return Err(RequestError::new("request body must be a JSON object"));
        }
        let wl_doc = doc.get("workload").cloned().unwrap_or_else(Json::object);
        let wl_doc = match wl_doc {
            // `"workload": "mul"` is shorthand for `{"kind": "mul"}`.
            Json::Str(kind) => Json::object().with("kind", kind),
            other @ Json::Obj(_) => other,
            _ => return Err(RequestError::new("`workload` must be an object or a kind string")),
        };
        let kind = wl_doc.get("kind").and_then(Json::as_str).unwrap_or("mul").to_owned();

        let rows = get_dim(&wl_doc, doc, "rows", 512)?;
        let lanes = get_dim(&wl_doc, doc, "lanes", 64)?;
        if rows < 4 || lanes < 2 {
            return Err(RequestError::new("array must be at least 4 rows × 2 lanes"));
        }
        if rows > 1 << 16 || lanes > 1 << 16 {
            return Err(RequestError::new("array dimensions capped at 65536 × 65536"));
        }

        let width = get_dim(&wl_doc, doc, "width", 8)?;
        let elements = get_dim(&wl_doc, doc, "elements", lanes.min(64))?;
        let workload = match kind.as_str() {
            "mul" => {
                validate_width(width)?;
                WorkloadSpec::Mul { width }
            }
            "dot" => {
                validate_width(width)?;
                validate_elements(elements, lanes)?;
                WorkloadSpec::Dot { elements, width }
            }
            "conv" => {
                validate_width(width)?;
                let filter_rows = get_dim(&wl_doc, doc, "filter_rows", 4)?;
                let filter_cols = get_dim(&wl_doc, doc, "filter_cols", 3)?;
                if filter_rows == 0 || filter_cols == 0 {
                    return Err(RequestError::new("convolution filter must be non-empty"));
                }
                WorkloadSpec::Conv { filter_rows, filter_cols, width }
            }
            "bnn" => {
                let fan_in = get_dim(&wl_doc, doc, "fan_in", 64)?;
                if fan_in < 2 {
                    return Err(RequestError::new("`fan_in` must be at least 2"));
                }
                WorkloadSpec::Bnn { fan_in }
            }
            "matvec" => {
                validate_width(width)?;
                validate_elements(elements, lanes)?;
                let mat_rows = get_dim(&wl_doc, doc, "mat_rows", 4)?;
                if mat_rows == 0 {
                    return Err(RequestError::new("`mat_rows` must be positive"));
                }
                WorkloadSpec::MatVec { mat_rows, elements, width }
            }
            other => {
                return Err(RequestError::new(format!(
                    "unknown workload kind `{other}` (expected mul, dot, conv, bnn, or matvec)"
                )))
            }
        };

        let config_text = doc.get("config").and_then(Json::as_str).unwrap_or("StxSt").to_owned();
        let config = BalanceConfig::from_str(&config_text)
            .map_err(|e| RequestError::new(format!("bad `config`: {e}")))?;

        let arch = match doc.get("arch").and_then(Json::as_str).unwrap_or("preset-output") {
            "preset-output" | "preset" | "cram" => ArchStyle::PresetOutput,
            "sense-amp" | "senseamp" | "pinatubo" => ArchStyle::SenseAmp,
            other => {
                return Err(RequestError::new(format!(
                    "unknown `arch` `{other}` (expected preset-output or sense-amp)"
                )))
            }
        };

        let iterations = get_u64(doc, "iterations", 200)?;
        if iterations == 0 {
            return Err(RequestError::new("`iterations` must be positive"));
        }
        if iterations > MAX_ITERATIONS {
            return Err(RequestError::new(format!(
                "`iterations` capped at {MAX_ITERATIONS} per request"
            )));
        }
        let period = get_u64(doc, "period", 100)?;
        let seed = get_u64(doc, "seed", SimConfig::paper().seed)?;
        let track_reads = get_bool(doc, "track_reads", false)?;
        let series = get_bool(doc, "series", false)?;

        let technology = match doc.get("technology") {
            None => Technology::Mram,
            Some(v) => {
                let text =
                    v.as_str().ok_or_else(|| RequestError::new("`technology` must be a string"))?;
                Technology::from_str(text)
                    .map_err(|e| RequestError::new(format!("bad `technology`: {e}")))?
            }
        };

        let timeout_ms = match doc.get("timeout_ms") {
            None => None,
            Some(v) => Some(
                v.as_u64()
                    .filter(|&ms| ms > 0)
                    .ok_or_else(|| RequestError::new("`timeout_ms` must be a positive integer"))?,
            ),
        };

        Ok(SimRequest {
            workload,
            rows,
            lanes,
            config,
            arch,
            iterations,
            period,
            seed,
            track_reads,
            series,
            technology,
            timeout_ms,
        })
    }

    /// The normalized request document: every field present, defaults
    /// filled, keys sorted (the `Json` object is a `BTreeMap`). Two
    /// requests describing the same simulation render to identical bytes.
    #[must_use]
    pub fn canonical_json(&self) -> Json {
        let mut wl = Json::object()
            .with("kind", self.workload.kind())
            .with("lanes", self.lanes)
            .with("rows", self.rows);
        match self.workload {
            WorkloadSpec::Mul { width } => wl = wl.with("width", width),
            WorkloadSpec::Dot { elements, width } => {
                wl = wl.with("elements", elements).with("width", width);
            }
            WorkloadSpec::Conv { filter_rows, filter_cols, width } => {
                wl = wl
                    .with("filter_cols", filter_cols)
                    .with("filter_rows", filter_rows)
                    .with("width", width);
            }
            WorkloadSpec::Bnn { fan_in } => wl = wl.with("fan_in", fan_in),
            WorkloadSpec::MatVec { mat_rows, elements, width } => {
                wl = wl.with("elements", elements).with("mat_rows", mat_rows).with("width", width);
            }
        }
        Json::object()
            .with("arch", self.arch.to_string())
            .with("config", self.config.to_string())
            .with("iterations", self.iterations)
            .with("period", self.period)
            .with("seed", self.seed)
            .with("series", self.series)
            .with("technology", self.technology.label().to_ascii_lowercase())
            .with("track_reads", self.track_reads)
            .with("workload", wl)
    }

    /// The canonical single-line rendering the cache key is computed over.
    #[must_use]
    pub fn canonical_text(&self) -> String {
        self.canonical_json().render()
    }

    /// Content address of this request: FNV-1a over the canonical bytes.
    #[must_use]
    pub fn cache_key(&self) -> u64 {
        fnv1a(self.canonical_text().as_bytes())
    }

    /// The simulator configuration this request describes.
    #[must_use]
    pub fn sim_config(&self) -> SimConfig {
        let schedule = if self.period == 0 {
            RemapSchedule::never()
        } else {
            RemapSchedule::every(self.period)
        };
        SimConfig::paper()
            .with_iterations(self.iterations)
            .with_arch(self.arch)
            .with_schedule(schedule)
            .with_seed(self.seed)
            .with_read_tracking(self.track_reads)
            .with_epoch_series(self.series)
    }

    /// Builds the request's workload.
    ///
    /// Validation in [`SimRequest::from_json`] mirrors the constructors'
    /// asserts, so this does not panic for a parsed request; the server
    /// still wraps execution in `catch_unwind` as a backstop.
    #[must_use]
    pub fn build_workload(&self) -> Workload {
        let dims = ArrayDims::new(self.rows, self.lanes);
        match self.workload {
            WorkloadSpec::Mul { width } => ParallelMul::new(dims, width).build(),
            WorkloadSpec::Dot { elements, width } => DotProduct::new(dims, elements, width).build(),
            WorkloadSpec::Conv { filter_rows, filter_cols, width } => {
                Convolution::new(dims, filter_rows, filter_cols, width).build()
            }
            WorkloadSpec::Bnn { fan_in } => BnnLayer::new(dims, fan_in).build(),
            WorkloadSpec::MatVec { mat_rows, elements, width } => {
                MatVec::new(dims, mat_rows, elements, width).build()
            }
        }
    }
}

fn validate_width(width: usize) -> Result<(), RequestError> {
    if (2..=64).contains(&width) {
        Ok(())
    } else {
        Err(RequestError::new("`width` must be between 2 and 64 bits"))
    }
}

fn validate_elements(elements: usize, lanes: usize) -> Result<(), RequestError> {
    if !elements.is_power_of_two() || elements < 2 {
        return Err(RequestError::new("`elements` must be a power of two ≥ 2"));
    }
    if elements > lanes {
        return Err(RequestError::new("`elements` cannot exceed the lane count"));
    }
    Ok(())
}

impl FromStr for SimRequest {
    type Err = RequestError;

    /// Parses a request from raw wire bytes (JSON text).
    fn from_str(text: &str) -> Result<SimRequest, RequestError> {
        let doc = nvpim_obs::json::parse(text)
            .map_err(|e| RequestError::new(format!("invalid JSON: {e}")))?;
        SimRequest::from_json(&doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> SimRequest {
        SimRequest::from_str(text).expect("request should parse")
    }

    #[test]
    fn defaults_make_a_minimal_request_complete() {
        let req = parse(r#"{"workload": {"kind": "mul"}}"#);
        assert_eq!(req.workload, WorkloadSpec::Mul { width: 8 });
        assert_eq!(req.rows, 512);
        assert_eq!(req.lanes, 64);
        assert_eq!(req.iterations, 200);
        assert_eq!(req.period, 100);
        assert_eq!(req.technology, Technology::Mram);
        assert!(!req.track_reads);
        assert_eq!(req.timeout_ms, None);
    }

    #[test]
    fn workload_kind_shorthand() {
        assert_eq!(parse(r#"{"workload": "mul"}"#), parse(r#"{"workload": {"kind": "mul"}}"#));
    }

    #[test]
    fn spelling_variants_share_one_canonical_form() {
        // Defaults explicit vs implicit, technology alias, arch alias —
        // all the same simulation, so all the same bytes and key.
        let implicit = parse(r#"{"workload": {"kind": "mul"}}"#);
        let explicit = parse(
            r#"{"workload": {"kind": "mul", "rows": 512, "lanes": 64, "width": 8},
                "config": "StxSt", "arch": "cram", "iterations": 200, "period": 100,
                "technology": "mtj", "track_reads": false}"#,
        );
        assert_eq!(implicit.canonical_text(), explicit.canonical_text());
        assert_eq!(implicit.cache_key(), explicit.cache_key());
    }

    #[test]
    fn timeout_is_not_part_of_the_cache_key() {
        let plain = parse(r#"{"workload": "mul"}"#);
        let with_timeout = parse(r#"{"workload": "mul", "timeout_ms": 5}"#);
        assert_eq!(plain.cache_key(), with_timeout.cache_key());
        assert_eq!(with_timeout.timeout_ms, Some(5));
    }

    #[test]
    fn series_is_canonical_and_splits_the_key() {
        // Unlike `timeout_ms`, `series` changes the result document (the
        // trajectory rides in it), so it must participate in the key.
        let plain = parse(r#"{"workload": "mul"}"#);
        let with_series = parse(r#"{"workload": "mul", "series": true}"#);
        assert!(!plain.series);
        assert!(with_series.series);
        assert_ne!(plain.cache_key(), with_series.cache_key());
        assert!(with_series.sim_config().epoch_series);
        assert!(!plain.sim_config().epoch_series);
    }

    #[test]
    fn different_requests_get_different_keys() {
        let a = parse(r#"{"workload": "mul", "iterations": 100}"#);
        let b = parse(r#"{"workload": "mul", "iterations": 101}"#);
        let c = parse(r#"{"workload": "dot", "iterations": 100}"#);
        assert_ne!(a.cache_key(), b.cache_key());
        assert_ne!(a.cache_key(), c.cache_key());
    }

    #[test]
    fn canonical_form_round_trips_through_the_parser() {
        for body in [
            r#"{"workload": "mul"}"#,
            r#"{"workload": {"kind": "dot", "elements": 32, "width": 4}, "config": "RaxSt+Hw"}"#,
            r#"{"workload": {"kind": "conv"}, "arch": "sense-amp", "period": 0}"#,
            r#"{"workload": {"kind": "bnn", "fan_in": 16}, "technology": "rram"}"#,
            r#"{"workload": {"kind": "matvec", "mat_rows": 3, "elements": 8}}"#,
        ] {
            let req = parse(body);
            let round = parse(&req.canonical_text());
            assert_eq!(req, round, "{body}");
            assert_eq!(req.cache_key(), round.cache_key(), "{body}");
        }
    }

    #[test]
    fn rejections_name_the_problem() {
        for (body, needle) in [
            (r#"[1, 2]"#, "JSON object"),
            (r#"{"workload": {"kind": "fft"}}"#, "unknown workload kind"),
            (r#"{"workload": "mul", "config": "XxYy"}"#, "bad `config`"),
            (r#"{"workload": "mul", "arch": "quantum"}"#, "unknown `arch`"),
            (r#"{"workload": "mul", "iterations": 0}"#, "must be positive"),
            (r#"{"workload": "mul", "iterations": 99000000}"#, "capped"),
            (r#"{"workload": {"kind": "dot", "elements": 3}}"#, "power of two"),
            (r#"{"workload": {"kind": "dot", "elements": 128, "lanes": 64}}"#, "lane count"),
            (r#"{"workload": {"kind": "mul", "width": 1}}"#, "width"),
            (r#"{"workload": "mul", "technology": "flash"}"#, "bad `technology`"),
            (r#"{"workload": "mul", "timeout_ms": 0}"#, "timeout_ms"),
            (r#"not json"#, "invalid JSON"),
        ] {
            let err = SimRequest::from_str(body).expect_err(body);
            assert!(err.message.contains(needle), "{body}: {}", err.message);
        }
    }

    #[test]
    fn built_workloads_fit_their_arrays() {
        for body in [
            r#"{"workload": "mul"}"#,
            r#"{"workload": {"kind": "dot", "elements": 16}}"#,
            r#"{"workload": {"kind": "conv", "width": 4}}"#,
            r#"{"workload": {"kind": "bnn", "fan_in": 32}}"#,
            r#"{"workload": {"kind": "matvec", "mat_rows": 2, "elements": 8, "width": 4}}"#,
        ] {
            let req = parse(body);
            let wl = req.build_workload();
            assert!(wl.trace().rows_used() <= req.rows, "{body}");
        }
    }
}
