//! Consistent hashing with virtual nodes over the canonical-request key.
//!
//! Every fleet member builds this ring from the *same* sorted membership
//! list, with the same FNV-1a hash the result cache already uses — so
//! ownership is a pure function of (membership, key) and any member can
//! answer "who owns this key" without coordination. Virtual nodes smooth
//! the key-space split: with `V` vnodes per member the largest ownership
//! share concentrates toward `1/N` instead of the wild variance a single
//! point per member would give.
//!
//! The ring is *static* per process: membership comes from `--peers` at
//! launch. Health is a separate, dynamic concern ([`crate::gossip`]) — a
//! down member still owns its arc (so keys do not thrash on flaps); the
//! forwarding layer routes around it with replicas and local fallback.

use crate::hash::fnv1a;

/// Virtual nodes per member. 64 keeps the expected ownership imbalance in
/// the ±15% band for small fleets while the full ring stays tiny (a
/// 16-member fleet is 1024 sorted u64s — one cache line miss to search).
pub const DEFAULT_VNODES: usize = 64;

/// Finalizer borrowed from splitmix64: FNV-1a has weak avalanche in the
/// high bits for short, similar inputs (vnode labels differ by a suffix
/// digit), which clusters ring points badly. Mixing both the vnode
/// positions and the looked-up key through this keeps ownership a pure
/// deterministic function while spreading points across the full u64 range.
fn spread(mut h: u64) -> u64 {
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// A consistent-hash ring over fleet member addresses.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Member addresses, sorted — index is the member id used in `points`.
    members: Vec<String>,
    /// `(ring position, member index)` sorted by position.
    points: Vec<(u64, usize)>,
}

impl HashRing {
    /// Builds the ring for `members` with `vnodes` virtual nodes each.
    /// Members are deduplicated and sorted first, so every instance handed
    /// the same set — in any order, with duplicates — builds an identical
    /// ring.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty or `vnodes` is zero.
    #[must_use]
    pub fn new(members: &[String], vnodes: usize) -> Self {
        assert!(!members.is_empty(), "a ring needs at least one member");
        assert!(vnodes > 0, "vnodes must be positive");
        let mut members: Vec<String> = members.to_vec();
        members.sort();
        members.dedup();
        let mut points = Vec::with_capacity(members.len() * vnodes);
        for (index, member) in members.iter().enumerate() {
            for vnode in 0..vnodes {
                let label = format!("{member}#{vnode}");
                points.push((spread(fnv1a(label.as_bytes())), index));
            }
        }
        // Ties (identical hash for two vnodes) are broken by member index,
        // so the sort is total and the ring deterministic.
        points.sort_unstable();
        HashRing { members, points }
    }

    /// The sorted member list the ring was built over.
    #[must_use]
    pub fn members(&self) -> &[String] {
        &self.members
    }

    /// The address owning `key`: the member of the first virtual node at or
    /// clockwise after the key's ring position.
    #[must_use]
    pub fn owner_of(&self, key: u64) -> &str {
        let key = spread(key);
        let pos = self.points.partition_point(|&(p, _)| p < key) % self.points.len();
        &self.members[self.points[pos].1]
    }

    /// Up to `n` *distinct* members after the owner in ring order — the
    /// replica set for `key`. Never contains the owner; shorter than `n`
    /// when the fleet is small.
    #[must_use]
    pub fn successors_of(&self, key: u64, n: usize) -> Vec<&str> {
        let key = spread(key);
        let start = self.points.partition_point(|&(p, _)| p < key) % self.points.len();
        let owner = self.points[start].1;
        let mut seen = vec![false; self.members.len()];
        seen[owner] = true;
        let mut successors = Vec::new();
        for offset in 1..self.points.len() {
            if successors.len() == n {
                break;
            }
            let (_, member) = self.points[(start + offset) % self.points.len()];
            if !seen[member] {
                seen[member] = true;
                successors.push(self.members[member].as_str());
            }
        }
        successors
    }

    /// The fraction of the 2^64 key space each member owns, in member
    /// order — served by `/fleet` so operators can see the split.
    #[must_use]
    pub fn ownership_fractions(&self) -> Vec<f64> {
        let mut spans = vec![0u128; self.members.len()];
        for (i, &(pos, member)) in self.points.iter().enumerate() {
            // The arc *ending* at this point belongs to this point's member.
            let prev = if i == 0 {
                // Wraparound arc: from the last point over 0 to the first.
                let (last, _) = self.points[self.points.len() - 1];
                (u128::from(u64::MAX) - u128::from(last) + 1) + u128::from(pos)
            } else {
                u128::from(pos) - u128::from(self.points[i - 1].0)
            };
            spans[member] += prev;
        }
        let total = 2u128.pow(64) as f64;
        spans.into_iter().map(|s| s as f64 / total).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 9000 + i)).collect()
    }

    #[test]
    fn ring_is_identical_regardless_of_member_order_or_duplicates() {
        let fwd = HashRing::new(&addrs(3), 64);
        let mut rev = addrs(3);
        rev.reverse();
        rev.push(rev[0].clone());
        let rev = HashRing::new(&rev, 64);
        for key in [0u64, 1, 42, u64::MAX, 0xdead_beef, fnv1a(b"request")] {
            assert_eq!(fwd.owner_of(key), rev.owner_of(key));
            assert_eq!(fwd.successors_of(key, 2), rev.successors_of(key, 2));
        }
    }

    #[test]
    fn every_key_has_exactly_one_owner_and_distinct_successors() {
        let ring = HashRing::new(&addrs(4), 32);
        for key in (0..1000u64).map(|i| fnv1a(&i.to_le_bytes())) {
            let owner = ring.owner_of(key);
            let successors = ring.successors_of(key, 3);
            assert_eq!(successors.len(), 3);
            assert!(!successors.contains(&owner), "owner never replicates to itself");
            let mut dedup = successors.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), 3, "successors are distinct members");
        }
    }

    #[test]
    fn successors_cap_at_fleet_size_minus_one() {
        let ring = HashRing::new(&addrs(3), 16);
        assert_eq!(ring.successors_of(7, 10).len(), 2);
        let solo = HashRing::new(&addrs(1), 16);
        assert_eq!(solo.owner_of(7), "127.0.0.1:9000");
        assert!(solo.successors_of(7, 3).is_empty());
    }

    #[test]
    fn vnodes_spread_ownership_roughly_evenly() {
        let ring = HashRing::new(&addrs(4), DEFAULT_VNODES);
        let fractions = ring.ownership_fractions();
        let total: f64 = fractions.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "fractions partition the key space: {total}");
        for f in &fractions {
            assert!(
                (0.10..0.45).contains(f),
                "with {DEFAULT_VNODES} vnodes no member should own <10% or >45%: {fractions:?}"
            );
        }
        // Empirically the fractions match where 1000 sampled keys land.
        let mut counts = [0usize; 4];
        for key in (0..1000u64).map(|i| fnv1a(&i.to_le_bytes())) {
            let owner = ring.owner_of(key);
            let idx = ring.members().iter().position(|m| m == owner).unwrap();
            counts[idx] += 1;
        }
        for (idx, &count) in counts.iter().enumerate() {
            let sampled = count as f64 / 1000.0;
            assert!(
                (sampled - fractions[idx]).abs() < 0.08,
                "sampled {sampled} vs arc fraction {} for member {idx}",
                fractions[idx]
            );
        }
    }

    #[test]
    fn wraparound_key_past_the_last_point_belongs_to_the_first() {
        let ring = HashRing::new(&addrs(2), 8);
        let owner_of_max = ring.owner_of(u64::MAX);
        let owner_of_zero = ring.owner_of(0);
        // Not asserting equality (a point may sit at u64::MAX), only that
        // both resolve without panicking and to real members.
        assert!(ring.members().iter().any(|m| m == owner_of_max));
        assert!(ring.members().iter().any(|m| m == owner_of_zero));
    }
}
