//! A deliberately minimal HTTP/1.1 reader/writer over `std::net`.
//!
//! The service speaks exactly the subset its clients need: one request per
//! connection (`Connection: close` on every response), `Content-Length`
//! bodies, and a close-delimited streaming mode for `/batch`. Limits are
//! enforced while reading (header block ≤ 16 KiB, body ≤ 4 MiB) so a
//! misbehaving peer costs a bounded amount of memory.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Maximum accepted header block, in bytes.
pub const MAX_HEAD: usize = 16 * 1024;

/// Maximum accepted request body, in bytes.
pub const MAX_BODY: usize = 4 * 1024 * 1024;

/// A parsed request head plus its body.
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// Request method (`GET`, `POST`, …), upper-cased by the client.
    pub method: String,
    /// Request target path with any `?query` stripped.
    pub path: String,
    /// Raw query string (text after `?`, without the `?`), if any.
    pub query: Option<String>,
    /// Header name/value pairs; names lower-cased during parsing.
    pub headers: Vec<(String, String)>,
    /// Raw request body.
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// The first header with the given (lower-case) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// The first value of a `key=value` query parameter, if present.
    /// (No percent-decoding: this service's parameters are plain tokens.)
    #[must_use]
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.as_deref()?.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }

    /// The body decoded as UTF-8.
    pub fn body_text(&self) -> Result<&str, HttpError> {
        std::str::from_utf8(&self.body).map_err(|_| HttpError::bad("body is not valid UTF-8"))
    }
}

/// A malformed or over-limit request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// Suggested response status (400 or 413).
    pub status: u16,
    /// Human-readable description.
    pub message: String,
}

impl HttpError {
    fn bad(message: impl Into<String>) -> Self {
        HttpError { status: 400, message: message.into() }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.status, self.message)
    }
}

impl std::error::Error for HttpError {}

/// Reads one request from the stream.
///
/// I/O failures surface as `Err(Err(io))`; protocol violations as
/// `Err(Ok(HttpError))` so the caller can still answer with a status code.
pub fn read_request(
    stream: &mut TcpStream,
) -> Result<HttpRequest, Result<HttpError, std::io::Error>> {
    let mut head = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    // Single-byte reads keep this simple and cannot over-read into the
    // body; the stream is buffered by the kernel and requests are tiny.
    while !head.ends_with(b"\r\n\r\n") {
        match stream.read(&mut byte) {
            Ok(0) => return Err(Ok(HttpError::bad("connection closed mid-request"))),
            Ok(_) => head.push(byte[0]),
            Err(e) => return Err(Err(e)),
        }
        if head.len() > MAX_HEAD {
            return Err(Ok(HttpError { status: 431, message: "header block too large".into() }));
        }
    }
    let head_text = std::str::from_utf8(&head).map_err(|_| Ok(HttpError::bad("non-UTF-8 head")))?;
    let mut lines = head_text.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_ascii_uppercase();
    let target = parts.next().unwrap_or_default();
    let version = parts.next().unwrap_or_default();
    if method.is_empty() || target.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(Ok(HttpError::bad("malformed request line")));
    }
    let (path, query) = match target.split_once('?') {
        Some((path, query)) => (path.to_owned(), Some(query.to_owned())),
        None => (target.to_owned(), None),
    };

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(Ok(HttpError::bad("malformed header line")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| v.parse::<usize>())
        .transpose()
        .map_err(|_| Ok(HttpError::bad("bad content-length")))?
        .unwrap_or(0);
    if content_length > MAX_BODY {
        return Err(Ok(HttpError { status: 413, message: "request body too large".into() }));
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        if let Err(e) = stream.read_exact(&mut body) {
            return Err(Err(e));
        }
    }
    Ok(HttpRequest { method, path, query, headers, body })
}

/// Standard reason phrase for the statuses this service emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Response",
    }
}

/// Renders a complete response — head and `Content-Length` body — to bytes
/// ready for a single write. The result cache pre-renders hit responses
/// with this at insert time, so a cache hit is one memcpy and one
/// `write_all` with zero per-request formatting.
#[must_use]
pub fn render_response(
    status: u16,
    extra_headers: &[(&str, &str)],
    content_type: &str,
    body: &str,
) -> Vec<u8> {
    let mut response = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len(),
    );
    for (name, value) in extra_headers {
        response.push_str(name);
        response.push_str(": ");
        response.push_str(value);
        response.push_str("\r\n");
    }
    response.push_str("\r\n");
    response.push_str(body);
    response.into_bytes()
}

/// Writes a complete response with a `Content-Length` body and closes the
/// exchange (`Connection: close`). Head and body go out in a single
/// `write_all`, so small responses cost one syscall.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, &str)],
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    stream.write_all(&render_response(status, extra_headers, content_type, body))?;
    stream.flush()
}

/// Writes a streaming response head with no `Content-Length`: the body is
/// delimited by connection close (used by `/batch` to stream one JSON line
/// per completed cell).
pub fn write_stream_head(
    stream: &mut TcpStream,
    content_type: &str,
    extra_headers: &[(&str, &str)],
) -> std::io::Result<()> {
    let mut head =
        format!("HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nConnection: close\r\n");
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.flush()
}
