//! A tiny std-only HTTP client for nvpim-serve.
//!
//! Used by the integration suite and the `repro serve-smoke` path, so
//! exercising the service never requires external tooling. It speaks the
//! same one-request-per-connection subset the server does and understands
//! both `Content-Length` bodies and close-delimited streams (`/batch`).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use nvpim_obs::Json;

/// A parsed HTTP response.
#[derive(Debug, Clone)]
pub struct HttpReply {
    /// Status code.
    pub status: u16,
    /// Header name/value pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl HttpReply {
    /// The first header with the given (lower-case) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text.
    #[must_use]
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// The body parsed as JSON.
    ///
    /// # Errors
    ///
    /// Fails when the body is not valid JSON.
    pub fn json(&self) -> Result<Json, String> {
        nvpim_obs::json::parse(&self.text()).map_err(|e| e.to_string())
    }

    /// The body split into parsed NDJSON lines (for `/batch` streams).
    ///
    /// # Errors
    ///
    /// Fails when any non-empty line is not valid JSON.
    pub fn json_lines(&self) -> Result<Vec<Json>, String> {
        self.text()
            .lines()
            .filter(|line| !line.trim().is_empty())
            .map(|line| nvpim_obs::json::parse(line).map_err(|e| e.to_string()))
            .collect()
    }
}

/// A client bound to one server address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
}

impl Client {
    /// A client for the server at `addr` with a 60 s I/O timeout.
    #[must_use]
    pub fn new(addr: SocketAddr) -> Self {
        Client { addr, timeout: Duration::from_secs(60) }
    }

    /// Overrides the per-connection read/write timeout.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Issues `GET path`.
    ///
    /// # Errors
    ///
    /// Propagates connection and protocol failures as strings.
    pub fn get(&self, path: &str) -> Result<HttpReply, String> {
        self.send("GET", path, None, &[])
    }

    /// Issues `POST path` with a JSON body.
    ///
    /// # Errors
    ///
    /// Propagates connection and protocol failures as strings.
    pub fn post_json(&self, path: &str, body: &str) -> Result<HttpReply, String> {
        self.send("POST", path, Some(body), &[])
    }

    /// Issues `POST path` with a JSON body and extra request headers (e.g.
    /// `X-Trace-Id` to join the request to a caller-owned trace).
    ///
    /// # Errors
    ///
    /// Propagates connection and protocol failures as strings.
    pub fn post_json_with_headers(
        &self,
        path: &str,
        body: &str,
        headers: &[(&str, &str)],
    ) -> Result<HttpReply, String> {
        self.send("POST", path, Some(body), headers)
    }

    fn send(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
        extra_headers: &[(&str, &str)],
    ) -> Result<HttpReply, String> {
        let mut stream =
            TcpStream::connect_timeout(&self.addr, Duration::from_secs(5)).map_err(err)?;
        stream.set_read_timeout(Some(self.timeout)).map_err(err)?;
        stream.set_write_timeout(Some(self.timeout)).map_err(err)?;
        let body = body.unwrap_or("");
        let mut request = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: close\r\n",
            self.addr,
            body.len(),
        );
        for (name, value) in extra_headers {
            request.push_str(name);
            request.push_str(": ");
            request.push_str(value);
            request.push_str("\r\n");
        }
        request.push_str("\r\n");
        request.push_str(body);
        stream.write_all(request.as_bytes()).map_err(err)?;
        stream.flush().map_err(err)?;
        read_reply(&mut stream)
    }
}

fn err(e: std::io::Error) -> String {
    e.to_string()
}

fn read_reply(stream: &mut TcpStream) -> Result<HttpReply, String> {
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).map_err(err)?;
    let head_end = find_head_end(&raw).ok_or("response head never terminated")?;
    let head =
        std::str::from_utf8(&raw[..head_end]).map_err(|_| "non-UTF-8 response head".to_owned())?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("malformed status line: {status_line}"))?;
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
        }
    }
    let mut body = raw[head_end + 4..].to_vec();
    // Trust Content-Length when present (the server always sends it for
    // non-streaming responses); close-delimited bodies arrive whole via
    // read_to_end.
    if let Some(len) = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
    {
        body.truncate(len);
    }
    Ok(HttpReply { status, headers, body })
}

fn find_head_end(raw: &[u8]) -> Option<usize> {
    raw.windows(4).position(|w| w == b"\r\n\r\n")
}
