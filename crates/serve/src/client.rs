//! A tiny std-only HTTP client for nvpim-serve.
//!
//! Used by the integration suite, the `repro serve-smoke`/`--fleet` paths,
//! and — most demandingly — the fleet's peer-to-peer forwarding, so
//! exercising the service never requires external tooling. It speaks the
//! same one-request-per-connection subset the server does and understands
//! both `Content-Length` bodies and close-delimited streams (`/batch`).
//!
//! Failures surface as a typed [`ClientError`] that distinguishes *refused*
//! (the peer is down — fail fast, trip the breaker) from *timed out* (the
//! peer is slow or wedged — equally a breaker strike, but a different
//! operator story) from *malformed* (the peer answered garbage — a protocol
//! bug, not a liveness signal). The fleet's circuit breakers key off this
//! distinction; plain callers can keep treating errors as strings via the
//! `From<ClientError> for String` impl.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use nvpim_obs::Json;

/// Why a client call failed, by operational category.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The peer actively refused the connection (nothing is listening, or
    /// the host rejected it). The fastest failure mode — the peer is down.
    Refused(String),
    /// The connect or read deadline expired. The peer may be up but slow,
    /// wedged, or partitioned away.
    TimedOut(String),
    /// The peer answered, but with bytes this client cannot parse as an
    /// HTTP response. A protocol bug, not a liveness problem.
    Malformed(String),
    /// Any other I/O failure (reset mid-stream, route errors, ...).
    Io(String),
}

impl ClientError {
    /// Whether the failure indicates the peer is unhealthy (refused, timed
    /// out, or the connection died) as opposed to a protocol-level problem.
    /// Circuit breakers count these; a malformed reply is debugged, not
    /// routed around.
    #[must_use]
    pub fn is_liveness(&self) -> bool {
        !matches!(self, ClientError::Malformed(_))
    }

    /// Stable lowercase token (`refused` / `timed_out` / `malformed` /
    /// `io`) for metrics labels and `/fleet` documents.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            ClientError::Refused(_) => "refused",
            ClientError::TimedOut(_) => "timed_out",
            ClientError::Malformed(_) => "malformed",
            ClientError::Io(_) => "io",
        }
    }

    fn from_io(e: &std::io::Error) -> Self {
        use std::io::ErrorKind;
        match e.kind() {
            ErrorKind::ConnectionRefused => ClientError::Refused(e.to_string()),
            ErrorKind::TimedOut | ErrorKind::WouldBlock => ClientError::TimedOut(e.to_string()),
            _ => ClientError::Io(e.to_string()),
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Refused(m) => write!(f, "connection refused: {m}"),
            ClientError::TimedOut(m) => write!(f, "timed out: {m}"),
            ClientError::Malformed(m) => write!(f, "malformed reply: {m}"),
            ClientError::Io(m) => write!(f, "i/o error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ClientError> for String {
    fn from(e: ClientError) -> String {
        e.to_string()
    }
}

/// A parsed HTTP response.
#[derive(Debug, Clone)]
pub struct HttpReply {
    /// Status code.
    pub status: u16,
    /// Header name/value pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl HttpReply {
    /// The first header with the given (lower-case) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text.
    #[must_use]
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// The body parsed as JSON.
    ///
    /// # Errors
    ///
    /// Fails when the body is not valid JSON.
    pub fn json(&self) -> Result<Json, String> {
        nvpim_obs::json::parse(&self.text()).map_err(|e| e.to_string())
    }

    /// The body split into parsed NDJSON lines (for `/batch` streams).
    ///
    /// # Errors
    ///
    /// Fails when any non-empty line is not valid JSON.
    pub fn json_lines(&self) -> Result<Vec<Json>, String> {
        self.text()
            .lines()
            .filter(|line| !line.trim().is_empty())
            .map(|line| nvpim_obs::json::parse(line).map_err(|e| e.to_string()))
            .collect()
    }
}

/// A client bound to one server address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: SocketAddr,
    connect_timeout: Duration,
    timeout: Duration,
}

impl Client {
    /// A client for the server at `addr` with a 5 s connect and 60 s I/O
    /// timeout — generous defaults for interactive callers; peer-to-peer
    /// fleet calls tighten both with [`Client::with_timeouts`].
    #[must_use]
    pub fn new(addr: SocketAddr) -> Self {
        Client { addr, connect_timeout: Duration::from_secs(5), timeout: Duration::from_secs(60) }
    }

    /// Overrides the per-connection read/write timeout.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Overrides both the connect and the read/write timeout — the shape a
    /// peer call wants (fail fast on a dead host *and* on a wedged one).
    #[must_use]
    pub fn with_timeouts(mut self, connect: Duration, io: Duration) -> Self {
        self.connect_timeout = connect;
        self.timeout = io;
        self
    }

    /// Issues `GET path`.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ClientError`] for connection and protocol failures.
    pub fn get(&self, path: &str) -> Result<HttpReply, ClientError> {
        self.send("GET", path, None, &[])
    }

    /// Issues `POST path` with a JSON body.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ClientError`] for connection and protocol failures.
    pub fn post_json(&self, path: &str, body: &str) -> Result<HttpReply, ClientError> {
        self.send("POST", path, Some(body), &[])
    }

    /// Issues `POST path` with a JSON body and extra request headers (e.g.
    /// `X-Trace-Id` to join the request to a caller-owned trace, or the
    /// fleet's `X-Fleet-Hop` loop guard).
    ///
    /// # Errors
    ///
    /// Returns a typed [`ClientError`] for connection and protocol failures.
    pub fn post_json_with_headers(
        &self,
        path: &str,
        body: &str,
        headers: &[(&str, &str)],
    ) -> Result<HttpReply, ClientError> {
        self.send("POST", path, Some(body), headers)
    }

    fn send(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
        extra_headers: &[(&str, &str)],
    ) -> Result<HttpReply, ClientError> {
        let mut stream = TcpStream::connect_timeout(&self.addr, self.connect_timeout)
            .map_err(|e| ClientError::from_io(&e))?;
        stream.set_read_timeout(Some(self.timeout)).map_err(|e| ClientError::from_io(&e))?;
        stream.set_write_timeout(Some(self.timeout)).map_err(|e| ClientError::from_io(&e))?;
        let body = body.unwrap_or("");
        let mut request = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: close\r\n",
            self.addr,
            body.len(),
        );
        for (name, value) in extra_headers {
            request.push_str(name);
            request.push_str(": ");
            request.push_str(value);
            request.push_str("\r\n");
        }
        request.push_str("\r\n");
        request.push_str(body);
        stream.write_all(request.as_bytes()).map_err(|e| ClientError::from_io(&e))?;
        stream.flush().map_err(|e| ClientError::from_io(&e))?;
        read_reply(&mut stream)
    }
}

fn read_reply(stream: &mut TcpStream) -> Result<HttpReply, ClientError> {
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).map_err(|e| ClientError::from_io(&e))?;
    let head_end = find_head_end(&raw)
        .ok_or_else(|| ClientError::Malformed("response head never terminated".into()))?;
    let head = std::str::from_utf8(&raw[..head_end])
        .map_err(|_| ClientError::Malformed("non-UTF-8 response head".into()))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let mut tokens = status_line.split_whitespace();
    if !tokens.next().unwrap_or_default().starts_with("HTTP/") {
        return Err(ClientError::Malformed(format!("reply is not HTTP: {status_line}")));
    }
    let status = tokens
        .next()
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| ClientError::Malformed(format!("malformed status line: {status_line}")))?;
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
        }
    }
    let mut body = raw[head_end + 4..].to_vec();
    // Trust Content-Length when present (the server always sends it for
    // non-streaming responses); close-delimited bodies arrive whole via
    // read_to_end.
    if let Some(len) = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
    {
        body.truncate(len);
    }
    Ok(HttpReply { status, headers, body })
}

fn find_head_end(raw: &[u8]) -> Option<usize> {
    raw.windows(4).position(|w| w == b"\r\n\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Binds an ephemeral port, learns its address, and drops the listener
    /// so nothing answers there.
    fn dead_addr() -> SocketAddr {
        TcpListener::bind("127.0.0.1:0").unwrap().local_addr().unwrap()
    }

    #[test]
    fn refused_connections_are_typed_refused() {
        let client = Client::new(dead_addr());
        let err = client.get("/health").expect_err("nothing listens there");
        assert_eq!(err.kind(), "refused", "{err}");
        assert!(err.is_liveness());
    }

    #[test]
    fn a_silent_peer_times_out_rather_than_hanging() {
        // A listener that accepts but never answers: the read deadline must
        // fire and classify as TimedOut.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let hold = std::thread::spawn(move || listener.accept().map(|(s, _)| s));
        let client =
            Client::new(addr).with_timeouts(Duration::from_millis(500), Duration::from_millis(50));
        let err = client.get("/health").expect_err("peer never answers");
        assert_eq!(err.kind(), "timed_out", "{err}");
        assert!(err.is_liveness());
        drop(hold.join());
    }

    #[test]
    fn garbage_replies_are_typed_malformed() {
        use std::io::Write as _;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            // Drain the request so the close is not an RST, then answer
            // bytes that are not HTTP.
            let mut scratch = [0u8; 1024];
            let _ = std::io::Read::read(&mut s, &mut scratch);
            let _ = s.write_all(b"SMTP 220 ready\r\n\r\n");
        });
        let client = Client::new(addr).with_timeout(Duration::from_secs(2));
        let err = client.get("/").expect_err("reply is not HTTP");
        assert_eq!(err.kind(), "malformed", "{err}");
        assert!(!err.is_liveness(), "protocol bugs must not trip breakers");
        server.join().unwrap();
    }

    #[test]
    fn client_errors_convert_to_strings_for_legacy_callers() {
        let err = ClientError::Refused("no route".into());
        let s: String = err.into();
        assert!(s.contains("refused"));
    }
}
