//! Multi-node fleet tests over real sockets: three in-process instances
//! exchanging forwards, replicas, and gossip.
//!
//! Each test boots its own fleet on ephemeral ports (bound first to learn
//! the addresses, then released for the servers to claim), so the suite
//! runs concurrently under the default harness. Everything asserts through
//! the public surface: `/simulate`, `/batch`, `/fleet`, `/metrics`, and
//! `/trace/<id>` — the same way an operator would.

use std::net::TcpListener;
use std::str::FromStr as _;
use std::time::{Duration, Instant};

use nvpim_obs::Json;
use nvpim_serve::{Client, FleetConfig, HashRing, Server, ServerConfig, ServerHandle, SimRequest};

struct Member {
    addr: String,
    handle: ServerHandle,
    client: Client,
}

/// Reserves `n` distinct ephemeral addresses by binding and dropping
/// listeners — the ports are free again when the servers bind them a few
/// microseconds later.
fn reserve_addrs(n: usize) -> Vec<String> {
    let held: Vec<TcpListener> =
        (0..n).map(|_| TcpListener::bind("127.0.0.1:0").expect("bind ephemeral")).collect();
    held.iter().map(|l| l.local_addr().unwrap().to_string()).collect()
}

/// Boots an `n`-member fleet with fast gossip and peer timeouts suited to
/// tests; `tune` adjusts each member's fleet config before start.
fn start_fleet(n: usize, tune: impl Fn(&mut FleetConfig)) -> Vec<Member> {
    let addrs = reserve_addrs(n);
    addrs
        .iter()
        .enumerate()
        .map(|(i, addr)| {
            let peers: Vec<String> =
                addrs.iter().enumerate().filter(|&(j, _)| j != i).map(|(_, a)| a.clone()).collect();
            let mut fleet = FleetConfig::new(addr.clone(), peers);
            fleet.gossip_interval_ms = 50;
            fleet.peer_timeout_ms = 1000;
            tune(&mut fleet);
            let config =
                ServerConfig { addr: addr.clone(), fleet: Some(fleet), ..ServerConfig::default() };
            let handle = Server::start(config).expect("fleet member starts");
            let client = Client::new(handle.addr());
            Member { addr: addr.clone(), handle, client }
        })
        .collect()
}

fn shutdown(members: Vec<Member>) {
    for member in &members {
        member.handle.request_shutdown();
    }
    for member in members {
        member.handle.join();
    }
}

/// The ring every member of `addrs` builds — tests use it to predict
/// ownership exactly as the fleet does.
fn ring_of(members: &[Member]) -> HashRing {
    let addrs: Vec<String> = members.iter().map(|m| m.addr.clone()).collect();
    HashRing::new(&addrs, nvpim_serve::ring::DEFAULT_VNODES)
}

fn small_request(seed: u64) -> String {
    format!(
        r#"{{"workload": {{"kind": "mul", "rows": 128, "lanes": 8}}, "iterations": 20, "seed": {seed}}}"#
    )
}

fn key_of(body: &str) -> u64 {
    SimRequest::from_str(body).expect("valid request").cache_key()
}

/// The first seed whose request key `predicate` accepts — lets a test pin
/// a request to a specific owner/replica layout on this run's ring.
fn seed_where(predicate: impl Fn(u64) -> bool) -> (String, u64) {
    for seed in 0..50_000u64 {
        let body = small_request(seed);
        let key = key_of(&body);
        if predicate(key) {
            return (body, key);
        }
    }
    panic!("no seed satisfies the requested ring layout");
}

fn counter(metrics: &Json, name: &str) -> u64 {
    metrics
        .get("metrics")
        .and_then(|m| m.get(name))
        .and_then(|c| c.get("value"))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

fn fleet_counter(doc: &Json, name: &str) -> u64 {
    doc.get("counters").and_then(|c| c.get(name)).and_then(Json::as_u64).unwrap_or(0)
}

fn wait_until(timeout: Duration, mut condition: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if condition() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    false
}

#[test]
fn fleet_endpoint_exposes_ring_peers_and_health() {
    let members = start_fleet(3, |_| {});
    for member in &members {
        let doc = member.client.get("/fleet").unwrap().json().unwrap();
        assert_eq!(doc.get("self").and_then(Json::as_str), Some(member.addr.as_str()));
        let ring = doc.get("ring").expect("ring section");
        let listed = ring.get("members").and_then(Json::as_array).unwrap();
        assert_eq!(listed.len(), 3);
        let fractions: Vec<f64> = listed
            .iter()
            .map(|m| m.get("owned_fraction").and_then(Json::as_f64).unwrap())
            .collect();
        assert!((fractions.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert_eq!(
            listed.iter().filter(|m| m.get("is_self") == Some(&Json::Bool(true))).count(),
            1
        );
        let peers = doc.get("peers").and_then(Json::as_array).unwrap();
        assert_eq!(peers.len(), 2);
        for peer in peers {
            assert_eq!(peer.get("breaker").and_then(Json::as_str), Some("closed"));
        }
        assert!(doc.get("counters").is_some());
    }
    // Gossip marks everyone up within a few rounds.
    assert!(
        wait_until(Duration::from_secs(5), || {
            members.iter().all(|m| {
                let doc = m.client.get("/fleet").unwrap().json().unwrap();
                doc.get("peers").and_then(Json::as_array).is_some_and(|peers| {
                    peers.iter().all(|p| p.get("up") == Some(&Json::Bool(true)))
                })
            })
        }),
        "all members must gossip each other up"
    );
    shutdown(members);
}

#[test]
fn miss_on_a_non_owner_forwards_and_populates_exactly_the_owner() {
    let members = start_fleet(3, |_| {});
    let ring = ring_of(&members);
    // A request owned by member 0, asked of member 1.
    let (body, key) = seed_where(|key| ring.owner_of(key) == members[0].addr);
    assert_eq!(ring.owner_of(key), members[0].addr);

    let reply = members[1].client.post_json("/simulate", &body).unwrap();
    assert_eq!(reply.status, 200);
    assert_eq!(reply.header("x-fleet-hops"), Some("1"));
    assert_eq!(reply.header("x-fleet-owner"), Some(members[0].addr.as_str()));
    assert_eq!(reply.header("x-cache"), Some("miss"), "first ask computes on the owner");

    // Exactly the owner's cache holds the entry now.
    for (index, member) in members.iter().enumerate() {
        let metrics = member.client.get("/metrics").unwrap().json().unwrap();
        let resident = metrics
            .get("serve")
            .and_then(|s| s.get("cache"))
            .and_then(|c| c.get("resident"))
            .and_then(Json::as_u64)
            .unwrap();
        let expected = u64::from(index == 0);
        assert_eq!(resident, expected, "member {index} resident count");
    }

    // Asking the owner directly is a hit with zero hops; the bytes match
    // the forwarded answer exactly.
    let direct = members[0].client.post_json("/simulate", &body).unwrap();
    assert_eq!(direct.header("x-cache"), Some("hit"));
    assert_eq!(direct.header("x-fleet-hops"), Some("0"));
    assert_eq!(direct.text(), reply.text(), "forwarded and direct answers are byte-identical");

    // A second ask through the non-owner is a forwarded hit.
    let again = members[1].client.post_json("/simulate", &body).unwrap();
    assert_eq!(again.header("x-cache"), Some("hit"));
    assert_eq!(again.header("x-fleet-hops"), Some("1"));
    assert_eq!(again.text(), reply.text());

    let doc = members[1].client.get("/fleet").unwrap().json().unwrap();
    assert!(fleet_counter(&doc, "forwarded") >= 2);
    let metrics = members[1].client.get("/metrics").unwrap().json().unwrap();
    assert!(counter(&metrics, "fleet.forwarded") >= 2);

    shutdown(members);
}

#[test]
fn fleet_answers_are_byte_identical_to_a_single_node() {
    let single = Server::start(ServerConfig::default()).expect("single node starts");
    let single_client = Client::new(single.addr());
    let members = start_fleet(3, |_| {});
    for seed in [3u64, 17, 90] {
        let body = small_request(seed);
        let reference = single_client.post_json("/simulate", &body).unwrap();
        assert_eq!(reference.status, 200);
        for member in &members {
            let reply = member.client.post_json("/simulate", &body).unwrap();
            assert_eq!(reply.status, 200);
            assert_eq!(
                reply.text(),
                reference.text(),
                "member {} must serve the single-node bytes for seed {seed}",
                member.addr
            );
        }
    }
    single.request_shutdown();
    single.join();
    shutdown(members);
}

#[test]
fn loop_guard_rejects_forged_hop_headers() {
    let members = start_fleet(3, |_| {});
    let body = small_request(1);
    for forged in ["2", "0", "banana"] {
        let reply = members[0]
            .client
            .post_json_with_headers("/simulate", &body, &[("X-Fleet-Hop", forged)])
            .unwrap();
        assert_eq!(reply.status, 400, "hop {forged:?} must be rejected");
        assert!(reply.text().contains("single-hop"));
    }
    // A legitimate hop value is served locally without re-forwarding, even
    // by a non-owner.
    let ring = ring_of(&members);
    let (foreign, _) = seed_where(|key| ring.owner_of(key) != members[0].addr);
    let reply = members[0]
        .client
        .post_json_with_headers("/simulate", &foreign, &[("X-Fleet-Hop", "1")])
        .unwrap();
    assert_eq!(reply.status, 200);
    assert_eq!(reply.header("x-fleet-hops"), Some("0"), "hopped requests serve locally");

    let doc = members[0].client.get("/fleet").unwrap().json().unwrap();
    assert_eq!(fleet_counter(&doc, "loop_rejected"), 3);
    let metrics = members[0].client.get("/metrics").unwrap().json().unwrap();
    assert_eq!(counter(&metrics, "fleet.loop_rejected"), 3);
    shutdown(members);
}

#[test]
fn hot_entries_replicate_and_a_replica_serves_after_owner_shutdown() {
    let members = start_fleet(3, |fleet| {
        fleet.hot_threshold = 2;
        fleet.replicas = 1;
    });
    let ring = ring_of(&members);
    // Owner = member 0, its ring successor (the replica) = member 1; the
    // failover client asks member 2.
    let (body, _key) = seed_where(|key| {
        ring.owner_of(key) == members[0].addr
            && ring.successors_of(key, 1) == vec![members[1].addr.as_str()]
    });

    // One miss, then hits until the hot threshold pushes a replica.
    let first = members[0].client.post_json("/simulate", &body).unwrap();
    assert_eq!(first.header("x-cache"), Some("miss"));
    let reference = first.text();
    for _ in 0..3 {
        let hit = members[0].client.post_json("/simulate", &body).unwrap();
        assert_eq!(hit.header("x-cache"), Some("hit"));
    }
    assert!(
        wait_until(Duration::from_secs(5), || {
            let doc = members[1].client.get("/fleet").unwrap().json().unwrap();
            fleet_counter(&doc, "replica_received") >= 1
        }),
        "the ring successor must receive the hot entry"
    );

    // Owner goes away.
    assert_eq!(members[0].client.post_json("/shutdown", "").unwrap().status, 200);

    // Member 2 (neither owner nor replica for this key) still answers: the
    // forward fails, the replica probe on member 1 hits.
    let failover = members[2].client.post_json("/simulate", &body).unwrap();
    assert_eq!(failover.status, 200, "owner death must degrade, not fail");
    assert_eq!(failover.header("x-cache"), Some("hit"));
    assert_eq!(failover.header("x-fleet-replica"), Some(members[1].addr.as_str()));
    assert_eq!(failover.text(), reference, "replica serves the owner's exact bytes");

    let doc = members[2].client.get("/fleet").unwrap().json().unwrap();
    assert!(fleet_counter(&doc, "replica_hits") >= 1);
    let metrics = members[2].client.get("/metrics").unwrap().json().unwrap();
    assert!(counter(&metrics, "fleet.replica_hits") >= 1);

    // Gossip notices the death: the survivors mark member 0 down.
    assert!(
        wait_until(Duration::from_secs(5), || {
            let doc = members[2].client.get("/fleet").unwrap().json().unwrap();
            doc.get("peers").and_then(Json::as_array).is_some_and(|peers| {
                peers.iter().any(|p| {
                    p.get("addr").and_then(Json::as_str) == Some(members[0].addr.as_str())
                        && p.get("up") == Some(&Json::Bool(false))
                })
            })
        }),
        "survivors must gossip the dead owner down"
    );
    shutdown(members);
}

#[test]
fn a_down_peer_never_fails_a_request() {
    // Three configured members, but the third never starts: every key it
    // owns must still be answered by whichever member is asked.
    let addrs = reserve_addrs(3);
    let members: Vec<Member> = addrs[..2]
        .iter()
        .enumerate()
        .map(|(i, addr)| {
            let peers: Vec<String> = addrs.iter().filter(|a| *a != addr).cloned().collect();
            let mut fleet = FleetConfig::new(addr.clone(), peers);
            fleet.gossip_interval_ms = 50;
            fleet.peer_timeout_ms = 500;
            let _ = i;
            let config =
                ServerConfig { addr: addr.clone(), fleet: Some(fleet), ..ServerConfig::default() };
            let handle = Server::start(config).expect("member starts");
            let client = Client::new(handle.addr());
            Member { addr: addr.clone(), handle, client }
        })
        .collect();
    let ring = HashRing::new(&addrs, nvpim_serve::ring::DEFAULT_VNODES);
    let (body, _key) = seed_where(|key| ring.owner_of(key) == addrs[2]);

    let reply = members[0].client.post_json("/simulate", &body).unwrap();
    assert_eq!(reply.status, 200, "dead owner must degrade to a local compute");
    assert_eq!(reply.header("x-cache"), Some("miss"));
    assert_eq!(reply.header("x-fleet-hops"), Some("0"), "fallback computes locally");
    let metrics = members[0].client.get("/metrics").unwrap().json().unwrap();
    assert!(counter(&metrics, "fleet.fallback_local") >= 1);

    // Spraying more keys at both live members: every single one answers.
    for seed in 100..115u64 {
        let body = small_request(seed);
        for member in &members {
            let reply = member.client.post_json("/simulate", &body).unwrap();
            assert_eq!(reply.status, 200, "no request may fail outright, seed {seed}");
        }
    }

    // The breaker on the dead peer is doing its job: after the threshold,
    // further calls short-circuit instead of paying the connect each time.
    let doc = members[0].client.get("/fleet").unwrap().json().unwrap();
    let dead = doc
        .get("peers")
        .and_then(Json::as_array)
        .and_then(|peers| {
            peers.iter().find(|p| p.get("addr").and_then(Json::as_str) == Some(addrs[2].as_str()))
        })
        .cloned()
        .expect("dead peer listed");
    assert!(
        dead.get("short_circuits").and_then(Json::as_u64).unwrap_or(0) > 0
            || dead.get("breaker").and_then(Json::as_str) != Some("closed"),
        "breaker must engage against the dead peer: {dead:?}"
    );
    shutdown(members);
}

#[test]
fn trace_ids_propagate_across_the_forwarding_hop() {
    let members = start_fleet(3, |_| {});
    let ring = ring_of(&members);
    let (body, _) = seed_where(|key| ring.owner_of(key) == members[0].addr);

    let trace = "00feed0000feed00";
    let reply = members[1]
        .client
        .post_json_with_headers("/simulate", &body, &[("X-Trace-Id", trace)])
        .unwrap();
    assert_eq!(reply.status, 200);
    assert_eq!(reply.header("x-trace-id"), Some(trace));
    assert_eq!(reply.header("x-fleet-hops"), Some("1"));

    // The forwarding member recorded the request and the fleet.forward span.
    let local = members[1].client.get(&format!("/trace/{trace}")).unwrap();
    assert_eq!(local.status, 200);
    let local_text = local.text();
    assert!(local_text.contains("serve.request"), "{local_text}");
    assert!(local_text.contains("fleet.forward"), "{local_text}");

    // The owner adopted the same trace id for its half of the work.
    let remote = members[0].client.get(&format!("/trace/{trace}")).unwrap();
    assert_eq!(remote.status, 200, "owner must hold spans for the propagated trace");
    let remote_text = remote.text();
    assert!(remote_text.contains("serve.request"), "{remote_text}");
    assert!(remote_text.contains("serve.execute"), "{remote_text}");

    shutdown(members);
}

#[test]
fn batch_on_a_member_reports_per_cell_hops() {
    let members = start_fleet(3, |_| {});
    let ring = ring_of(&members);
    let (local_body, _) = seed_where(|key| ring.owner_of(key) == members[0].addr);
    let (remote_body, _) = seed_where(|key| ring.owner_of(key) == members[1].addr);

    let batch = format!(r#"{{"requests": [{local_body}, {remote_body}]}}"#);
    let reply = members[0].client.post_json("/batch", &batch).unwrap();
    assert_eq!(reply.status, 200);
    let lines = reply.json_lines().unwrap();
    assert_eq!(lines.len(), 2);
    for line in &lines {
        let index = line.get("index").and_then(Json::as_u64).unwrap();
        let hops = line.get("hops").and_then(Json::as_u64).expect("fleet batch lines carry hops");
        assert_eq!(hops, index, "cell 0 is owned locally, cell 1 forwards");
        assert!(line.get("response").is_some());
    }
    shutdown(members);
}
