//! End-to-end tests of the nvpim-serve service over real sockets.
//!
//! Everything runs in-process with the std-only [`Client`] — no external
//! tooling. Each test binds its own ephemeral-port server so they can run
//! concurrently under the default test harness.

use std::time::Duration;

use nvpim_obs::Json;
use nvpim_serve::{Client, Server, ServerConfig};

fn start(config: ServerConfig) -> (nvpim_serve::ServerHandle, Client) {
    let handle = Server::start(config).expect("server starts");
    let client = Client::new(handle.addr());
    (handle, client)
}

fn small_request(seed: u64) -> String {
    format!(
        r#"{{"workload": {{"kind": "mul", "rows": 128, "lanes": 8}}, "iterations": 20, "seed": {seed}}}"#
    )
}

/// A request the simulator cannot finish within its 1 ms budget: random
/// (`Ra`) rows reshuffle the software table every epoch, so with `period: 1`
/// the `+Hw` kernel is recompiled — a full trace walk — for every single
/// iteration, and the cost genuinely scales with the iteration count.
fn slow_request() -> &'static str {
    r#"{"workload": {"kind": "mul", "rows": 128, "lanes": 16},
        "config": "RaxRa+Hw", "period": 1, "iterations": 200000, "timeout_ms": 1}"#
}

fn counter(metrics: &Json, name: &str) -> u64 {
    metrics
        .get("metrics")
        .and_then(|m| m.get(name))
        .and_then(|c| c.get("value"))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

#[test]
fn index_health_and_unknown_routes() {
    let (handle, client) = start(ServerConfig::default());
    let index = client.get("/").unwrap();
    assert_eq!(index.status, 200);
    assert!(index.text().contains("nvpim-serve"));

    let health = client.get("/health").unwrap().json().unwrap();
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));

    assert_eq!(client.get("/nope").unwrap().status, 404);
    assert_eq!(client.post_json("/health", "{}").unwrap().status, 405);
    assert_eq!(client.post_json("/simulate", "not json").unwrap().status, 400);
    let bad = client.post_json("/simulate", r#"{"workload": "warp-drive"}"#).unwrap();
    assert_eq!(bad.status, 400);
    assert!(bad.text().contains("error"));

    handle.request_shutdown();
    handle.join();
}

#[test]
fn concurrent_identical_requests_get_byte_identical_bodies_and_hit_the_cache() {
    let (handle, client) = start(ServerConfig::default());
    let body = small_request(42);

    // Pre-warm so every concurrent request below is deterministically a hit.
    let first = client.post_json("/simulate", &body).unwrap();
    assert_eq!(first.status, 200);
    assert_eq!(first.header("x-cache"), Some("miss"));
    let reference = first.text();

    let clients: Vec<_> = (0..10).map(|_| (client.clone(), body.clone())).collect();
    let replies: Vec<_> = clients
        .into_iter()
        .map(|(c, b)| std::thread::spawn(move || c.post_json("/simulate", &b).unwrap()))
        .collect::<Vec<_>>()
        .into_iter()
        .map(|t| t.join().unwrap())
        .collect();

    assert_eq!(replies.len(), 10);
    for reply in &replies {
        assert_eq!(reply.status, 200);
        assert_eq!(reply.text(), reference, "identical requests must serve identical bytes");
    }
    assert!(replies.iter().all(|r| r.header("x-cache") == Some("hit")));

    let metrics = client.get("/metrics").unwrap().json().unwrap();
    let hits = metrics
        .get("serve")
        .and_then(|s| s.get("cache"))
        .and_then(|c| c.get("hits"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    assert!(hits >= 10, "expected >= 10 cache hits, saw {hits}");
    assert!(counter(&metrics, "serve.cache.hits") >= 10);
    assert!(counter(&metrics, "serve.requests.simulate") >= 11);

    handle.request_shutdown();
    handle.join();
}

#[test]
fn spelling_variants_of_one_request_share_a_cache_entry() {
    let (handle, client) = start(ServerConfig::default());
    let verbose = r#"{"workload": {"kind": "mul", "rows": 128, "lanes": 8, "width": 8},
                      "config": "StxSt", "arch": "preset-output", "iterations": 20}"#;
    let terse = r#"{"iterations": 20, "workload": "mul", "rows": 128, "lanes": 8}"#;

    let first = client.post_json("/simulate", verbose).unwrap();
    assert_eq!(first.header("x-cache"), Some("miss"));
    let second = client.post_json("/simulate", terse).unwrap();
    assert_eq!(second.header("x-cache"), Some("hit"), "canonicalization must unify spellings");
    assert_eq!(first.text(), second.text());

    handle.request_shutdown();
    handle.join();
}

#[test]
fn cache_hits_skip_simulation_cost_entirely() {
    let (handle, client) = start(ServerConfig::default());
    // Expensive by construction: with Ra rows and period 1 the Hw kernel is
    // recompiled every iteration, so the cold run pays real simulation time
    // that a hit — one pre-rendered buffer write — must not.
    let body = r#"{"workload": {"kind": "mul", "rows": 128, "lanes": 16},
                   "config": "RaxRa+Hw", "period": 1, "iterations": 1500}"#;
    let cold_start = std::time::Instant::now();
    let cold = client.post_json("/simulate", body).unwrap();
    let cold_time = cold_start.elapsed();
    assert_eq!(cold.status, 200);
    assert_eq!(cold.header("x-cache"), Some("miss"));

    // Best of several hits, so scheduler noise cannot fail the bound.
    let mut best_hit = Duration::MAX;
    for _ in 0..5 {
        let hit_start = std::time::Instant::now();
        let hit = client.post_json("/simulate", body).unwrap();
        let hit_time = hit_start.elapsed();
        assert_eq!(hit.status, 200);
        assert_eq!(hit.header("x-cache"), Some("hit"));
        assert_eq!(hit.text(), cold.text(), "hits must serve the cold run's exact bytes");
        best_hit = best_hit.min(hit_time);
    }
    assert!(
        best_hit < cold_time / 10,
        "a cache hit ({best_hit:?}) must cost <10% of the cold request ({cold_time:?})"
    );

    handle.request_shutdown();
    handle.join();
}

#[test]
fn over_budget_simulation_times_out_with_504() {
    let (handle, client) = start(ServerConfig::default());
    let reply = client.post_json("/simulate", slow_request()).unwrap();
    assert_eq!(reply.status, 504);
    let metrics = client.get("/metrics").unwrap().json().unwrap();
    assert!(counter(&metrics, "serve.timeouts") >= 1);
    handle.request_shutdown();
    handle.join();
}

#[test]
fn saturated_queue_answers_429_with_retry_after() {
    let config =
        ServerConfig { workers: 1, queue_depth: 1, retry_after_s: 3, ..ServerConfig::default() };
    let (handle, client) = start(config);

    // Occupy the single worker with a request that holds its handler for a
    // while (the 1 ms budget expires quickly, but the handler only returns
    // after writing the 504 — so pile enough on to keep the queue full).
    let slow = r#"{"workload": {"kind": "mul", "rows": 256, "lanes": 32},
                   "config": "RaxRa+Hw", "period": 1, "iterations": 400000, "timeout_ms": 2000}"#;
    let occupier = {
        let c = client.clone();
        std::thread::spawn(move || c.post_json("/simulate", slow))
    };
    std::thread::sleep(Duration::from_millis(100));

    // Flood concurrently: with the lone worker held and one queue slot, at
    // most one of these can be queued — the rest must bounce with 429.
    let flood: Vec<_> = (0..10)
        .map(|_| {
            let c = client.clone();
            std::thread::spawn(move || c.get("/health").unwrap())
        })
        .collect();
    let replies: Vec<_> = flood.into_iter().map(|t| t.join().unwrap()).collect();
    let reply = replies
        .into_iter()
        .find(|r| r.status == 429)
        .expect("flooding a 1-worker/1-slot server must surface a 429");
    assert_eq!(reply.header("retry-after"), Some("3"));
    assert!(reply.text().contains("queue is full"));

    let metrics_after = occupier.join().unwrap().unwrap();
    assert!(metrics_after.status == 200 || metrics_after.status == 504);
    let metrics = client.get("/metrics").unwrap().json().unwrap();
    assert!(counter(&metrics, "serve.rejected.backpressure") >= 1);

    handle.request_shutdown();
    handle.join();
}

#[test]
fn graceful_shutdown_finishes_in_flight_work_and_refuses_new_connections() {
    let (handle, client) = start(ServerConfig::default());

    // A real (uncached) request that takes a moment but finishes well within
    // its budget — it must complete with 200 even though a drain starts
    // while it runs.
    let in_flight = {
        let c = client.clone();
        std::thread::spawn(move || {
            let body = r#"{"workload": {"kind": "mul", "rows": 256, "lanes": 32},
                           "config": "RaxRa+Hw", "period": 1, "iterations": 2000}"#;
            c.post_json("/simulate", body).unwrap()
        })
    };
    std::thread::sleep(Duration::from_millis(50));

    let drain = client.post_json("/shutdown", "").unwrap();
    assert_eq!(drain.status, 200);
    assert_eq!(drain.json().unwrap().get("status").and_then(Json::as_str), Some("draining"));

    let reply = in_flight.join().unwrap();
    assert_eq!(reply.status, 200, "in-flight work must finish during a drain");

    // New connections are refused while (and after) draining; the listener
    // may already be gone, which is equally acceptable.
    if let Ok(refused) = client.get("/health") {
        assert_eq!(refused.status, 503);
    }

    handle.join(); // must return: the drain empties the queue and exits
}

#[test]
fn batch_streams_one_line_per_cell_and_reuses_the_cache() {
    let (handle, client) = start(ServerConfig::default());

    // Pre-warm cell 2 so its batch line is deterministically cached.
    let warm = small_request(7);
    assert_eq!(client.post_json("/simulate", &warm).unwrap().status, 200);

    let batch = format!(
        r#"{{"requests": [{}, {}, {}, {}]}}"#,
        small_request(1),
        small_request(2),
        warm,
        r#"{"workload": "dot", "rows": 128, "lanes": 8, "elements": 4, "iterations": 20}"#,
    );
    let reply = client.post_json("/batch", &batch).unwrap();
    assert_eq!(reply.status, 200);
    assert_eq!(reply.header("content-type"), Some("application/x-ndjson"));

    let lines = reply.json_lines().unwrap();
    assert_eq!(lines.len(), 4, "one NDJSON line per cell");
    let mut indices: Vec<u64> =
        lines.iter().filter_map(|l| l.get("index").and_then(Json::as_u64)).collect();
    indices.sort_unstable();
    assert_eq!(indices, vec![0, 1, 2, 3]);
    for line in &lines {
        let response = line.get("response").expect("each line carries a response document");
        assert_eq!(response.get("schema").and_then(Json::as_str), Some("nvpim.serve-result/v1"));
    }
    let warmed = lines
        .iter()
        .find(|l| l.get("index").and_then(Json::as_u64) == Some(2))
        .and_then(|l| l.get("cached"))
        .cloned();
    assert_eq!(warmed, Some(Json::Bool(true)), "pre-warmed cell must come from the cache");

    // Batch errors: empty and malformed bodies are rejected up front.
    assert_eq!(client.post_json("/batch", r#"{"requests": []}"#).unwrap().status, 400);
    assert_eq!(client.post_json("/batch", r#"{"cells": 3}"#).unwrap().status, 400);

    handle.request_shutdown();
    handle.join();
}

#[test]
fn trace_ids_echo_propagate_and_fetch_as_chrome_json() {
    let (handle, client) = start(ServerConfig::default());

    // Every response carries an X-Trace-Id, minted when the client sends
    // none — including error responses.
    let minted = client.get("/health").unwrap();
    let minted_id = minted.header("x-trace-id").expect("minted trace id").to_owned();
    assert!(!minted_id.is_empty() && minted_id.len() <= 16);
    assert!(client.get("/nope").unwrap().header("x-trace-id").is_some());

    // A client-supplied id is adopted and echoed (in its normalized
    // 16-digit form) on both the cache-miss and the pre-rendered
    // cache-hit path.
    let body = small_request(1234);
    let miss = client
        .post_json_with_headers("/simulate", &body, &[("X-Trace-Id", "00c0ffee00c0ffee")])
        .unwrap();
    assert_eq!(miss.status, 200);
    assert_eq!(miss.header("x-cache"), Some("miss"));
    assert_eq!(miss.header("x-trace-id"), Some("00c0ffee00c0ffee"));
    let hit = client
        .post_json_with_headers("/simulate", &body, &[("X-Trace-Id", "00c0ffee00c0ffee")])
        .unwrap();
    assert_eq!(hit.header("x-cache"), Some("hit"));
    assert_eq!(hit.header("x-trace-id"), Some("00c0ffee00c0ffee"), "hit bytes gain the echo too");
    assert_eq!(hit.text(), miss.text(), "trace echo must not disturb the cached body");

    // The collected trace comes back as Chrome trace-event JSON with the
    // request spans and the execute child span.
    let trace = client.get("/trace/00c0ffee00c0ffee").unwrap();
    assert_eq!(trace.status, 200);
    // The fetch is a request of its own and gets its own echo.
    assert!(trace.header("x-trace-id").is_some());
    let doc = trace.json().unwrap();
    let events = doc.get("traceEvents").and_then(Json::as_array).expect("traceEvents array");
    let names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .filter_map(|e| e.get("name").and_then(Json::as_str))
        .collect();
    assert!(
        names.iter().filter(|n| **n == "serve.request").count() >= 2,
        "both requests recorded: {names:?}"
    );
    assert!(names.contains(&"serve.execute"), "simulation child span recorded: {names:?}");
    let stats = nvpim_obs::validate::chrome_trace(&trace.text()).expect("validator-clean trace");
    assert!(stats.complete_spans >= 3);

    // Garbage and unknown ids fail cleanly.
    assert_eq!(client.get("/trace/zzz").unwrap().status, 400);
    assert_eq!(client.get("/trace/deadbeefdeadbeef").unwrap().status, 404);

    handle.request_shutdown();
    handle.join();
}

#[test]
fn metrics_expose_fleet_fields_and_prometheus_text() {
    let (handle, client) = start(ServerConfig::default());
    assert_eq!(client.post_json("/simulate", &small_request(5)).unwrap().status, 200);
    assert_eq!(client.post_json("/simulate", &small_request(5)).unwrap().status, 200);

    // JSON document: server identity and load fields ride alongside the
    // metric registry.
    let doc = client.get("/metrics").unwrap().json().unwrap();
    let serve = doc.get("serve").expect("serve section");
    assert!(serve.get("uptime_s").is_some(), "uptime exposed");
    assert_eq!(
        serve.get("version").and_then(Json::as_str),
        Some(env!("CARGO_PKG_VERSION")),
        "build version exposed"
    );
    assert!(serve.get("in_flight").and_then(Json::as_u64).is_some(), "in-flight gauge exposed");
    // This very request is in flight while the snapshot is taken.
    assert!(serve.get("in_flight").and_then(Json::as_u64).unwrap() >= 1);

    // Prometheus text: parses through the repo's own checker and carries
    // the hit/miss-labeled latency family plus the server gauges.
    let prom = client.get("/metrics?format=prometheus").unwrap();
    assert_eq!(prom.status, 200);
    assert!(prom.header("content-type").unwrap_or("").starts_with("text/plain"));
    let text = prom.text();
    let stats = nvpim_obs::validate::prometheus(&text).expect("validator-clean exposition");
    assert!(stats.families >= 5);
    assert!(text.contains("# TYPE nvpim_serve_requests_total counter"));
    assert!(text.contains("nvpim_serve_uptime_s"));
    assert!(text.contains("nvpim_serve_in_flight"));
    assert!(
        text.contains("nvpim_serve_latency_us_simulate_bucket{cache=\"hit\""),
        "hit-labeled latency family present"
    );
    assert!(text.contains("nvpim_serve_latency_us_simulate_bucket{cache=\"miss\""));

    // Unknown formats are named in the rejection.
    let bad = client.get("/metrics?format=xml").unwrap();
    assert_eq!(bad.status, 400);
    assert!(bad.text().contains("xml"));

    handle.request_shutdown();
    handle.join();
}

#[test]
fn series_request_streams_the_wear_trajectory() {
    let (handle, client) = start(ServerConfig::default());
    let body = r#"{"workload": {"kind": "mul", "rows": 128, "lanes": 8},
                   "iterations": 20, "period": 4, "series": true}"#;
    let reply = client.post_json("/simulate", body).unwrap();
    assert_eq!(reply.status, 200);
    let doc = reply.json().unwrap();
    let series = doc.get("result").and_then(|r| r.get("series")).and_then(Json::as_array).unwrap();
    assert_eq!(series.len(), 5, "one sample per remap epoch");
    assert_eq!(series.last().unwrap().get("iteration").and_then(Json::as_u64), Some(20));

    // The same shape arrives over /batch NDJSON, and the plain spelling
    // stays a distinct cache entry without the series.
    let batch = format!(
        r#"{{"requests": [{body}, {{"workload": {{"kind": "mul", "rows": 128, "lanes": 8}},
            "iterations": 20, "period": 4}}]}}"#
    );
    let lines = client.post_json("/batch", &batch).unwrap().json_lines().unwrap();
    assert_eq!(lines.len(), 2);
    for line in &lines {
        let index = line.get("index").and_then(Json::as_u64).unwrap();
        let has_series = line
            .get("response")
            .and_then(|r| r.get("result"))
            .and_then(|r| r.get("series"))
            .is_some();
        assert_eq!(has_series, index == 0, "series rides exactly where requested");
    }

    handle.request_shutdown();
    handle.join();
}

#[test]
fn spill_compaction_bounds_the_disk_tier_across_restarts() {
    let dir = std::env::temp_dir().join(format!("nvpim-serve-compact-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    fn cache_stat(metrics: &Json, name: &str) -> u64 {
        metrics
            .get("serve")
            .and_then(|s| s.get("cache"))
            .and_then(|c| c.get(name))
            .and_then(Json::as_u64)
            .unwrap_or(0)
    }

    // Phase 1: spill a run of distinct entries with no byte budget and
    // measure how much disk they take.
    let seeds: Vec<u64> = (900..908).collect();
    let unbounded_bytes;
    {
        let config = ServerConfig { cache_dir: Some(dir.clone()), ..ServerConfig::default() };
        let (handle, client) = start(config);
        for &seed in &seeds {
            let reply = client.post_json("/simulate", &small_request(seed)).unwrap();
            assert_eq!(reply.status, 200);
            assert_eq!(reply.header("x-cache"), Some("miss"));
        }
        let metrics = client.get("/metrics").unwrap().json().unwrap();
        unbounded_bytes = cache_stat(&metrics, "spill_bytes");
        assert!(unbounded_bytes > 0, "spill tier grew while unbounded");
        assert_eq!(cache_stat(&metrics, "compactions"), 0, "no budget, no compaction");
        handle.request_shutdown();
        handle.join();
    }

    // Phase 2: restart over the same directory with half that budget. The
    // startup compaction must retire oldest-first until the bound holds.
    let budget = unbounded_bytes / 2;
    {
        let config = ServerConfig {
            cache_dir: Some(dir.clone()),
            cache_max_bytes: budget,
            ..ServerConfig::default()
        };
        let (handle, client) = start(config);
        let metrics = client.get("/metrics").unwrap().json().unwrap();
        assert!(
            cache_stat(&metrics, "spill_bytes") <= budget,
            "startup compaction enforces the byte budget: {} > {budget}",
            cache_stat(&metrics, "spill_bytes")
        );
        assert!(cache_stat(&metrics, "compactions") >= 1);
        assert!(cache_stat(&metrics, "compacted_entries") >= 1);
        assert!(cache_stat(&metrics, "compacted_bytes") > 0);

        // Eviction is LRU by index order: the oldest entry recomputes, the
        // newest is still warm from disk.
        let oldest = client.post_json("/simulate", &small_request(seeds[0])).unwrap();
        assert_eq!(oldest.header("x-cache"), Some("miss"), "oldest entry was compacted away");
        let newest = client.post_json("/simulate", &small_request(*seeds.last().unwrap())).unwrap();
        assert_eq!(newest.header("x-cache"), Some("hit"), "newest entry survives compaction");

        // New spills keep the budget holding steady-state, not just at boot.
        for seed in 950..956 {
            assert_eq!(client.post_json("/simulate", &small_request(seed)).unwrap().status, 200);
        }
        let metrics = client.get("/metrics").unwrap().json().unwrap();
        assert!(cache_stat(&metrics, "spill_bytes") <= budget, "budget holds under continued load");
        handle.request_shutdown();
        handle.join();
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn disk_cache_and_manifests_survive_a_server_restart() {
    let dir = std::env::temp_dir().join(format!("nvpim-serve-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let body = small_request(99);
    let key;
    {
        let config = ServerConfig { cache_dir: Some(dir.clone()), ..ServerConfig::default() };
        let (handle, client) = start(config);
        let reply = client.post_json("/simulate", &body).unwrap();
        assert_eq!(reply.status, 200);
        assert_eq!(reply.header("x-cache"), Some("miss"));
        key = reply
            .json()
            .unwrap()
            .get("key")
            .and_then(Json::as_str)
            .expect("result carries its cache key")
            .to_owned();
        // A no-series request is answered analytically, and the engine's
        // query counter surfaces in the absorbed server metrics.
        let metrics = client.get("/metrics").unwrap().json().unwrap();
        assert!(counter(&metrics, "sim.analytic_queries") >= 1);
        handle.request_shutdown();
        handle.join();
    }

    assert!(dir.join(format!("{key}.json")).is_file(), "cache entry spilled to disk");
    let index = std::fs::read_to_string(dir.join("index.jsonl")).expect("spill index written");
    assert!(index.contains(&key), "spilled key recorded in the index: {index}");
    let manifest_path = dir.join("manifests").join(format!("{key}.manifest.json"));
    let manifest = std::fs::read_to_string(&manifest_path).expect("run manifest written");
    assert!(manifest.contains("serve:mul"));
    assert!(
        manifest.contains("\"analytic_path\""),
        "manifest records which engine path answered: {manifest}"
    );
    assert!(dir.join("events.jsonl").is_file(), "event log written");

    // A restarted server over the same directory is warm immediately.
    let config = ServerConfig { cache_dir: Some(dir.clone()), ..ServerConfig::default() };
    let (handle, client) = start(config);
    let reply = client.post_json("/simulate", &body).unwrap();
    assert_eq!(reply.status, 200);
    assert_eq!(reply.header("x-cache"), Some("hit"), "disk spill makes restarts warm");
    handle.request_shutdown();
    handle.join();

    let _ = std::fs::remove_dir_all(&dir);
}
