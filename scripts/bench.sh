#!/usr/bin/env bash
# Runs the simulation benchmarks, records them as JSON artifacts, and
# diffs the medians against the checked-in baselines.
#
# Usage: scripts/bench.sh [--update] [OUT.json] [extra cargo-bench args...]
#
# Executes the release-mode `sim_engine`, `parallel_matrix`,
# `matrix_reuse`, and `writes_per_op` benches
# (the vendored std-only criterion shim under compat/) and converts their
# report lines —
#
#   group/name    min 1.23 µs  median 1.30 µs  mean 1.31 µs  (10 samples)
#
# — into OUT.json (default BENCH_sim.json) mapping each benchmark id to
# its median ns/iter:
#
#   { "group/name": 1300.0, ... }
#
# The `serve_throughput` bench (HTTP round-trip cost cold vs cache-hit,
# plus request canonicalization) and the `fleet_forward` bench (local hit
# vs one-hop forwarded hit vs replica failover hit across a three-member
# in-process fleet) are additionally recorded the same way into
# BENCH_serve.json next to OUT.json.
#
# Before overwriting, each baseline is captured and the new medians are
# compared against it: any benchmark that slowed down by more than 25%
# is a regression. Regressions print a table and exit nonzero with the
# old baselines restored, so a bad run never rewrites the checked-in
# numbers; pass --update to accept the new numbers regardless (e.g. after
# an intentional trade-off, with the reason in the commit message).
#
# All cargo invocations run --offline: this environment has no route to
# crates.io.
set -euo pipefail
cd "$(dirname "$0")/.."

update=0
if [ "${1:-}" = "--update" ]; then
    update=1
    shift
fi

out="${1:-BENCH_sim.json}"
shift || true

# Convert the shim's human-readable medians to ns and emit sorted JSON.
to_json() {
    awk '
    / min .* median .* mean .* samples\)$/ {
        id = $1
        for (i = 2; i <= NF; i++) {
            if ($i == "median") { value = $(i + 1); unit = $(i + 2) }
        }
        ns = value + 0
        if (unit ~ /^µs/ || unit == "us") ns *= 1e3
        else if (unit == "ms")            ns *= 1e6
        else if (unit == "s")             ns *= 1e9
        printf "%s\t%.1f\n", id, ns
    }
    ' "$1" | sort | awk '
    BEGIN { print "{" }
    {
        if (NR > 1) printf ",\n"
        printf "  \"%s\": %s", $1, $2
    }
    END { print "\n}" }
    '
}

report() {
    local file="$1" dest="$2"
    to_json "$file" > "$dest"
    local count
    count="$(grep -c '":' "$dest" || true)"
    echo "bench: wrote $count entries to $dest"
}

# "key<TAB>median" lines from one of the JSON artifacts.
flatten() {
    sed -n 's/^ *"\([^"]*\)": *\([0-9.]*\),*$/\1\t\2/p' "$1"
}

# Prints a baseline-vs-current table for one artifact and returns nonzero
# if any benchmark regressed past the threshold.
compare() {
    local old="$1" new="$2" label="$3"
    if [ ! -s "$old" ]; then
        echo "bench: no previous baseline for $label — nothing to compare"
        return 0
    fi
    echo "bench: $label vs checked-in baseline (regression threshold +25%)"
    flatten "$old" > "$tmpdir/old.tsv"
    flatten "$new" > "$tmpdir/new.tsv"
    awk -F'\t' '
    NR == FNR { baseline[$1] = $2; next }
    {
        current[$1] = $2
        if ($1 in baseline) {
            delta = (($2 - baseline[$1]) / baseline[$1]) * 100
            verdict = ""
            if (delta > 25) { verdict = "REGRESSION"; bad++ }
            else if (delta < -25) verdict = "improved"
            printf "  %-44s %14.1f %14.1f %+8.1f%% %s\n",
                   $1, baseline[$1], $2, delta, verdict
        } else {
            printf "  %-44s %14s %14.1f %9s\n", $1, "(new)", $2, ""
        }
    }
    END {
        for (id in baseline)
            if (!(id in current))
                printf "  %-44s %14.1f %14s %9s removed\n", id, baseline[id], "-", ""
        exit bad > 0
    }
    ' "$tmpdir/old.tsv" "$tmpdir/new.tsv"
}

# Idle before each benchmark so every entry starts with an equally
# recovered CPU quota — otherwise position in the run skews medians on
# throttled shared machines (see the compat/criterion cooldown docs).
export CRITERION_COOLDOWN_MS="${CRITERION_COOLDOWN_MS:-2000}"

raw="$(mktemp)"
raw_serve="$(mktemp)"
tmpdir="$(mktemp -d)"
trap 'rm -f "$raw" "$raw_serve"; rm -rf "$tmpdir"' EXIT

serve_out="$(dirname "$out")/BENCH_serve.json"
for f in "$out" "$serve_out"; do
    [ -f "$f" ] && cp "$f" "$tmpdir/$(basename "$f").baseline"
done

for bench in sim_engine parallel_matrix matrix_reuse writes_per_op; do
    cargo bench --offline -p nvpim-bench --bench "$bench" "$@" | tee -a "$raw"
done
report "$raw" "$out"

for bench in serve_throughput fleet_forward; do
    cargo bench --offline -p nvpim-bench --bench "$bench" "$@" | tee -a "$raw_serve"
done
report "$raw_serve" "$serve_out"

printf '  %-44s %14s %14s %9s\n' benchmark "baseline ns" "current ns" delta
failed=0
compare "$tmpdir/$(basename "$out").baseline" "$out" "$(basename "$out")" || failed=1
compare "$tmpdir/BENCH_serve.json.baseline" "$serve_out" "BENCH_serve.json" || failed=1

if [ "$failed" = 1 ]; then
    if [ "$update" = 1 ]; then
        echo "bench: regressions past threshold accepted (--update)"
    else
        for f in "$out" "$serve_out"; do
            base="$tmpdir/$(basename "$f").baseline"
            [ -f "$base" ] && cp "$base" "$f"
        done
        echo "bench: FAILED — medians regressed >25% against the baseline;" \
             "baselines left unchanged (rerun with --update to accept)" >&2
        exit 1
    fi
fi
echo "bench: baselines up to date"
