#!/usr/bin/env bash
# Runs the simulation benchmarks and records them as JSON artifacts.
#
# Usage: scripts/bench.sh [OUT.json] [extra cargo-bench args...]
#
# Executes the release-mode `sim_engine` and `parallel_matrix` benches
# (the vendored std-only criterion shim under compat/) and converts their
# report lines —
#
#   group/name    min 1.23 µs  median 1.30 µs  mean 1.31 µs  (10 samples)
#
# — into OUT.json (default BENCH_sim.json) mapping each benchmark id to
# its median ns/iter:
#
#   { "group/name": 1300.0, ... }
#
# The `serve_throughput` bench (HTTP round-trip cost cold vs cache-hit,
# plus request canonicalization) is additionally recorded the same way
# into BENCH_serve.json next to OUT.json.
#
# All cargo invocations run --offline: this environment has no route to
# crates.io.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_sim.json}"
shift || true

# Convert the shim's human-readable medians to ns and emit sorted JSON.
to_json() {
    awk '
    / min .* median .* mean .* samples\)$/ {
        id = $1
        for (i = 2; i <= NF; i++) {
            if ($i == "median") { value = $(i + 1); unit = $(i + 2) }
        }
        ns = value + 0
        if (unit ~ /^µs/ || unit == "us") ns *= 1e3
        else if (unit == "ms")            ns *= 1e6
        else if (unit == "s")             ns *= 1e9
        printf "%s\t%.1f\n", id, ns
    }
    ' "$1" | sort | awk '
    BEGIN { print "{" }
    {
        if (NR > 1) printf ",\n"
        printf "  \"%s\": %s", $1, $2
    }
    END { print "\n}" }
    '
}

report() {
    local file="$1" dest="$2"
    to_json "$file" > "$dest"
    local count
    count="$(grep -c '":' "$dest" || true)"
    echo "bench: wrote $count entries to $dest"
}

raw="$(mktemp)"
raw_serve="$(mktemp)"
trap 'rm -f "$raw" "$raw_serve"' EXIT

for bench in sim_engine parallel_matrix; do
    cargo bench --offline -p nvpim-bench --bench "$bench" "$@" | tee -a "$raw"
done
report "$raw" "$out"

cargo bench --offline -p nvpim-bench --bench serve_throughput "$@" | tee -a "$raw_serve"
report "$raw_serve" "$(dirname "$out")/BENCH_serve.json"
