#!/usr/bin/env bash
# Local CI gate: build, test, and lint the whole workspace.
#
# All cargo invocations run --offline: the build environment has no route
# to crates.io, and the three external deps (rand/proptest/criterion)
# resolve to std-only stand-ins vendored under compat/.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "ci: all checks passed"
