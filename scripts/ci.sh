#!/usr/bin/env bash
# Local CI gate: build, test, and lint the whole workspace.
#
# All cargo invocations run --offline: the build environment has no route
# to crates.io, and the three external deps (rand/proptest/criterion)
# resolve to std-only stand-ins vendored under compat/.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo clippy --offline --workspace --all-targets -- -D warnings

# Parallel-engine determinism must hold under release-mode optimization
# too (the bit-identical-results contract the --jobs flag relies on).
cargo test -q --release --offline -p nvpim-core --test parallel
cargo test -q --release --offline -p nvpim-exec

# Two-worker smoke of the repro harness at a scaled-down iteration count:
# exercises the full binary → parallel matrix path end to end.
cargo run --release --offline -q -p nvpim-bench --bin repro -- \
    fig14 --iters 20 --jobs 2 > /dev/null

echo "ci: all checks passed"
