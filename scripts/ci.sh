#!/usr/bin/env bash
# Local CI gate: build, test, and lint the whole workspace.
#
# All cargo invocations run --offline: the build environment has no route
# to crates.io, and the three external deps (rand/proptest/criterion)
# resolve to std-only stand-ins vendored under compat/.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo build --release --offline --workspace
cargo test -q --offline --workspace
cargo clippy --offline --workspace --all-targets -- -D warnings

# Parallel-engine determinism must hold under release-mode optimization
# too (the bit-identical-results contract the --jobs flag relies on).
cargo test -q --release --offline -p nvpim-core --test parallel
cargo test -q --release --offline -p nvpim-exec

# The compiled-kernel bit-identity suite in release mode: the +Hw fast
# path must match per-iteration step replay cell for cell under the same
# optimization level the benchmarks and the repro binary run at.
cargo test -q --release --offline -p nvpim-core --test kernels

# The replay-free analytic engine in release mode: closed-form, lazy, and
# fallback answers must be bit-identical to both simulator arms across all
# 18 configurations, randomized iteration counts, and the exact lifetime
# solve.
cargo test -q --release --offline -p nvpim-core --test analytic

# The artifact-store bit-identity suite in release mode: wear identical
# with the store off, cold, warm, and starved to a 1-byte budget (every
# insert immediately evicted) across all 18 configurations, the blocked
# vs scalar fold layouts, and a seeded fuzz arm over shapes, schedules,
# and byte budgets.
cargo test -q --release --offline -p nvpim-core --test artifacts

# The HTTP service end to end in release mode: concurrent byte-identical
# responses, cache hits, 429 backpressure, 504 timeouts, graceful drain.
cargo test -q --release --offline -p nvpim-serve --test integration

# The multi-node fleet suite in release mode: three in-process members
# exchanging forwards, hot-entry replicas, and gossip over real sockets —
# ring ownership, the single-hop loop guard, replica failover after an
# owner shutdown, and byte-identity of fleet vs single-node answers.
cargo test -q --release --offline -p nvpim-serve --test fleet

# Two-worker smoke of the repro harness at a scaled-down iteration count:
# exercises the full binary → parallel matrix path end to end. serve-smoke
# boots an in-process server and round-trips real HTTP requests.
cargo run --release --offline -q -p nvpim-bench --bin repro -- \
    fig14 --iters 20 --jobs 2 > /dev/null

# Traced smoke: a two-worker matrix run with every observability artifact
# enabled, then structural validation of the exports — obs-lint re-parses
# the Chrome trace-event JSON the same way Perfetto's loader does, so the
# encoder cannot drift from what the viewers accept. serve-smoke validates
# the Prometheus exposition in-process and (under --out) leaves the text
# behind as serve-metrics.prom for an independent re-lint here.
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "$OBS_TMP"' EXIT
cargo run --release --offline -q -p nvpim-bench --bin repro -- \
    fig17 --iters 40 --jobs 2 \
    --trace-out "$OBS_TMP/trace.json" \
    --series-out "$OBS_TMP/series.json" \
    --manifest "$OBS_TMP/manifest.json" > /dev/null
cargo run --release --offline -q -p nvpim-bench --bin repro -- \
    serve-smoke --out "$OBS_TMP" > /dev/null
cargo run --release --offline -q -p nvpim-obs --bin obs-lint -- \
    --chrome "$OBS_TMP/trace.json" --prom "$OBS_TMP/serve-metrics.prom"
# The smoke run samples the wear trajectory: the manifest must carry the
# same five series the --series-out artifact does.
for key in wear.max_writes wear.p99_writes wear.mean_writes wear.gini wear.remaps; do
    grep -q "\"$key\"" "$OBS_TMP/series.json" ||
        { echo "ci: series artifact is missing $key" >&2; exit 1; }
    grep -q "\"$key\"" "$OBS_TMP/manifest.json" ||
        { echo "ci: manifest series section is missing $key" >&2; exit 1; }
done
echo "ci: traced smoke artifacts validated"

# Cross-configuration artifact reuse end to end: renders the fig14–16
# heatmaps plus the fig17 lifetime matrix twice in one process and fails
# unless the second pass answers from the store (artifacts.hits > 0) AND
# both passes' rendered outputs are byte-identical — memoization must be
# observable in the counters and invisible in the numbers.
cargo run --release --offline -q -p nvpim-bench --bin repro -- \
    reuse-check --iters 40 > /dev/null
echo "ci: artifact reuse check passed"

# Every example must build and run at a tiny iteration scale (the
# NVPIM_EXAMPLE_ITERS override exists precisely for this smoke stage).
cargo build --release --offline -q --examples
for example in quickstart custom_workload lifetime_explorer observed_run \
               traced_run wear_heatmap failed_cells; do
    NVPIM_EXAMPLE_ITERS=20 \
        cargo run --release --offline -q --example "$example" > /dev/null ||
        { echo "ci: example $example failed" >&2; exit 1; }
done
echo "ci: examples smoke-tested"

# Static verification: nvpim-lint runs the netlist, equivalence,
# mapping, and conservation passes over every circuit builder and
# balancing strategy; any finding exits nonzero and fails the gate. The
# check crate itself is held to pedantic clippy (scoped via its [lints]
# table — a command-line -W clippy::pedantic would leak into every
# compat/ path dependency) on top of the workspace-wide -D warnings.
cargo run --release --offline -q -p nvpim-check --bin nvpim-lint -- --quiet
cargo clippy --offline -p nvpim-check --all-targets -- -D warnings

# Equivalence stage at full paper width range: every library circuit at
# widths 1..16 is optimized through the gated pass pipeline and formally
# proven equivalent to its seed netlist; the writes-per-op table is the
# visible artifact (seed vs optimized cell writes, proof method used).
cargo run --release --offline -q -p nvpim-check --bin nvpim-lint -- \
    --equiv --opt --widths 1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16 --quiet

# Best-effort: miri the exec crate's scoped-thread pool for UB when a
# nightly toolchain with miri is installed; skip gracefully otherwise
# (the container bakes in stable only, and miri needs network for sysroot
# setup on first run).
if cargo +nightly miri --version > /dev/null 2>&1; then
    cargo +nightly miri test --offline -p nvpim-exec ||
        echo "ci: warning — miri run failed (non-blocking)"
else
    echo "ci: skipping miri (nightly toolchain with miri not installed)"
fi

# Opt-in bench smoke: NVPIM_BENCH_SMOKE=1 runs the full benchmark suite
# and diffs medians against the checked-in baselines (scripts/bench.sh
# exits nonzero on >25% regressions). Off by default — wall-clock numbers
# are only meaningful on a quiet machine.
if [ "${NVPIM_BENCH_SMOKE:-0}" = "1" ]; then
    scripts/bench.sh
else
    echo "ci: skipping bench smoke (set NVPIM_BENCH_SMOKE=1 to enable)"
fi

echo "ci: all checks passed"
