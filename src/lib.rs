//! # nvpim — endurance of processing in (nonvolatile) memory
//!
//! A from-scratch Rust reproduction of *"On Endurance of Processing in
//! (Nonvolatile) Memory"* (Resch et al., ISCA 2023): an instruction-level
//! endurance simulator for digital processing-in-memory (PIM) arrays built
//! on nonvolatile memories, together with the paper's workloads,
//! load-balancing strategies, and lifetime analyses.
//!
//! The workspace is layered; this facade re-exports every layer:
//!
//! * [`nvm`] — device technologies (MRAM, RRAM, PCM): endurance, timing,
//!   energy;
//! * [`logic`] — gate-level synthesis of arithmetic (NAND adders, the
//!   paper's DADDA-count multiplier, comparators);
//! * [`array`](mod@array) — the PIM array model: lanes, wear maps, execution semantics;
//! * [`balance`] — load-balancing strategies (`St`/`Ra`/`Bs` × rows/columns,
//!   hardware re-mapping, access-aware shuffling);
//! * [`workloads`] — parallel multiplication, dot-product, convolution;
//! * [`core`] — the endurance simulator, lifetime model (Eq. 4),
//!   closed-form limits (Eqs. 1–2), and failed-cell analysis;
//! * [`obs`] — zero-dependency observability: metrics, span timers, event
//!   sinks, and diffable run manifests (see the `observed_run` example).
//!
//! # Quickstart
//!
//! ```
//! use nvpim::prelude::*;
//!
//! // A small array so the example runs fast; the paper uses 1024×1024.
//! let workload = ParallelMul::new(ArrayDims::new(256, 32), 8).build();
//! let sim = EnduranceSimulator::new(SimConfig::default().with_iterations(500));
//!
//! let baseline = sim.run(&workload, BalanceConfig::baseline());
//! let balanced = sim.run(&workload, "RaxSt+Hw".parse()?);
//!
//! let model = LifetimeModel::mtj();
//! println!(
//!     "lifetime {:.2e} iterations, {:.2}x over StxSt",
//!     model.lifetime(&balanced).iterations,
//!     model.improvement(&balanced, &baseline),
//! );
//! # Ok::<(), nvpim::balance::ParseConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use nvpim_array as array;
pub use nvpim_balance as balance;
pub use nvpim_check as check;
pub use nvpim_core as core;
pub use nvpim_exec as exec;
pub use nvpim_logic as logic;
pub use nvpim_nvm as nvm;
pub use nvpim_obs as obs;
pub use nvpim_serve as serve;
pub use nvpim_workloads as workloads;

/// Iteration count for examples: the `NVPIM_EXAMPLE_ITERS` environment
/// variable overrides `default` when set to a positive integer, so CI can
/// smoke-run every example at a tiny scale without touching the sources.
#[must_use]
pub fn example_iterations(default: u64) -> u64 {
    std::env::var("NVPIM_EXAMPLE_ITERS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use nvpim_array::{ArchStyle, ArrayDims, LaneSet, PimArray, WearMap};
    pub use nvpim_balance::{BalanceConfig, RemapSchedule, Strategy};
    pub use nvpim_core::{EnduranceSimulator, Lifetime, LifetimeModel, SimConfig, SimResult};
    pub use nvpim_logic::{circuits, words, CircuitBuilder, GateKind};
    pub use nvpim_nvm::{DeviceParams, EnduranceModel, Technology};
    pub use nvpim_obs::{EventSink, Observer, RunManifest, StderrProgressSink};
    pub use nvpim_workloads::convolution::Convolution;
    pub use nvpim_workloads::dot_product::DotProduct;
    pub use nvpim_workloads::parallel_mul::ParallelMul;
    pub use nvpim_workloads::{Workload, WorkloadBuilder};
}
