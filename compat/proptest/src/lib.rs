//! Offline stand-in for the parts of the `proptest` crate this workspace
//! uses.
//!
//! The build environment has no route to crates.io, so this crate implements
//! a compact property-testing core with the same surface syntax: the
//! [`proptest!`] macro (both `name in strategy` and `name: Type` parameter
//! forms, plus `#![proptest_config(..)]`), strategies for integer/float
//! ranges, tuples, `Just`, [`prop_oneof!`] unions, `prop::collection::vec`,
//! `any::<T>()`, `.prop_map(..)`, and the `prop_assert*` macros.
//!
//! Unlike upstream proptest there is no shrinking: a failing case reports
//! its case number and the generator seed (set `PROPTEST_SEED` to replay,
//! `PROPTEST_CASES` to change the case count).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng as _, RngCore as _, SeedableRng as _};

pub mod collection;
pub mod prelude;

/// Namespace mirror of upstream's `prop::` paths (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

// ---------------------------------------------------------------------------
// RNG + configuration
// ---------------------------------------------------------------------------

/// The generator handed to strategies while a property runs.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// A deterministic generator derived from a test's name (and the
    /// `PROPTEST_SEED` environment variable, when set).
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        let seed = match std::env::var("PROPTEST_SEED").ok().and_then(|s| s.parse().ok()) {
            Some(seed) => seed,
            None => fnv1a(name.as_bytes()),
        };
        TestRng { inner: SmallRng::seed_from_u64(seed) }
    }

    /// The seed-equivalent used for failure reports.
    #[must_use]
    pub fn describe_seed(name: &str) -> u64 {
        std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| fnv1a(name.as_bytes()))
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen()
    }

    /// A uniform index in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.inner.gen_index(bound)
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

/// Run-time configuration of a [`proptest!`] block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of cases each property is exercised with.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(48);
        ProptestConfig { cases }
    }
}

/// Prints a replay hint when a property body panics.
#[doc(hidden)]
#[derive(Debug)]
pub struct CaseGuard {
    /// Test name.
    pub name: &'static str,
    /// 0-based case index.
    pub case: u32,
    /// Seed that reproduces the run.
    pub seed: u64,
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest: property `{}` failed at case {} (replay with PROPTEST_SEED={})",
                self.name, self.case, self.seed
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// A recipe for generating values of an output type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy that post-processes this one's values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice between same-typed strategies (the [`prop_oneof!`] macro).
#[derive(Debug, Clone)]
pub struct Union<S> {
    arms: Vec<S>,
}

impl<S> Union<S> {
    /// A union over `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    #[must_use]
    pub fn new(arms: Vec<S>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        let arm = rng.index(self.arms.len());
        self.arms[arm].sample(rng)
    }
}

macro_rules! impl_uint_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }

        impl Strategy for std::ops::RangeFrom<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (<$t>::MAX - self.start) as u128 + 1;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_uint_ranges!(u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / a);
impl_tuple_strategy!(A / a, B / b);
impl_tuple_strategy!(A / a, B / b, C / c);
impl_tuple_strategy!(A / a, B / b, C / c, D / d);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);

// ---------------------------------------------------------------------------
// Arbitrary / any
// ---------------------------------------------------------------------------

/// Types with a canonical whole-domain strategy (`any::<T>()` and the
/// `name: Type` parameter form of [`proptest!`]).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        rng.unit_f64() as f32
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Defines property tests. Mirrors upstream syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn holds(x in 0usize..10, flag: bool) { prop_assert!(x < 10 || flag); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = (<$crate::ProptestConfig as ::std::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let seed = $crate::TestRng::describe_seed(stringify!($name));
            let mut rng = $crate::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                let guard = $crate::CaseGuard { name: stringify!($name), case, seed };
                $crate::__proptest_body!(rng, $body, $($params)*);
                drop(guard);
            }
        }
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($rng:ident, $body:block $(,)?) => { $body };
    ($rng:ident, $body:block, $var:ident in $strat:expr $(, $($rest:tt)*)?) => {{
        let $var = $crate::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_body!($rng, $body $(, $($rest)*)?)
    }};
    ($rng:ident, $body:block, $var:ident : $ty:ty $(, $($rest:tt)*)?) => {{
        let $var = <$ty as $crate::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_body!($rng, $body $(, $($rest)*)?)
    }};
}

/// Asserts a condition inside a property (panics with context on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice between strategies of one type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($arm),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::deterministic("ranges_respect_bounds");
        for _ in 0..1000 {
            let v = (3u64..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let w = (5usize..=9).sample(&mut rng);
            assert!((5..=9).contains(&w));
            let x = (1u16..).sample(&mut rng);
            assert!(x >= 1);
            let f = (0.25f64..0.75).sample(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn oneof_map_and_tuples_compose() {
        let strat = prop_oneof![Just(1u8), Just(2), Just(3)];
        let combined = (strat.clone(), strat, any::<bool>())
            .prop_map(|(a, b, f)| u32::from(a) + u32::from(b) + u32::from(f));
        let mut rng = crate::TestRng::deterministic("oneof");
        for _ in 0..200 {
            let v = combined.sample(&mut rng);
            assert!((2..=7).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_obeys_size() {
        let strat = crate::collection::vec(0usize..10, 2..5);
        let mut rng = crate::TestRng::deterministic("vec");
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
        let fixed = crate::collection::vec(0u64..256, 4);
        assert_eq!(fixed.sample(&mut rng).len(), 4);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_both_param_forms(a in 1usize..50, b: u16, flag: bool) {
            prop_assert!((1..50).contains(&a));
            prop_assert_eq!(u32::from(b) + u32::from(flag), u32::from(b) + u32::from(flag));
            prop_assert_ne!(a, 0);
        }

        #[test]
        fn macro_single_param(v in prop::collection::vec(0u8..4, 0..6)) {
            prop_assert!(v.len() < 6);
        }
    }
}
