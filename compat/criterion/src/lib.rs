//! Offline stand-in for the parts of the `criterion` crate this workspace
//! uses.
//!
//! The build environment has no route to crates.io, so this crate implements
//! a compact wall-clock benchmarking harness with criterion's surface
//! syntax: [`Criterion`], benchmark groups, [`BenchmarkId`],
//! [`Bencher::iter`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Each benchmark is timed with adaptive batching (batches sized to
//! ~`CRITERION_SAMPLE_MS`, default 20 ms) and reported as
//! `min / median / mean` nanoseconds per iteration. Positional command-line
//! arguments act as substring filters, as with upstream criterion.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

static FILTERS: OnceLock<Vec<String>> = OnceLock::new();

/// Parses the benchmark binary's command-line arguments (called by
/// [`criterion_main!`]). Flags are ignored; positional arguments become
/// substring filters on benchmark ids.
pub fn init_from_args() {
    let filters: Vec<String> = std::env::args().skip(1).filter(|a| !a.starts_with('-')).collect();
    let _ = FILTERS.set(filters);
}

fn should_run(id: &str) -> bool {
    match FILTERS.get() {
        None => true,
        Some(f) if f.is_empty() => true,
        Some(f) => f.iter().any(|needle| id.contains(needle.as_str())),
    }
}

fn env_ms(var: &str, default_ms: u64) -> Duration {
    Duration::from_millis(
        std::env::var(var).ok().and_then(|s| s.parse().ok()).unwrap_or(default_ms),
    )
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// An id of the form `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { repr: format!("{}/{}", name.into(), parameter) }
    }

    /// An id that is just the parameter's rendering.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { repr: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { repr: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { repr: s }
    }
}

/// Collects timing samples for one benchmark.
#[derive(Debug, Default)]
pub struct Bencher {
    sample_size: usize,
    samples_ns_per_iter: Vec<f64>,
}

impl Bencher {
    /// Times `f`, storing per-iteration wall-clock samples.
    ///
    /// The batch size is chosen so one sample costs roughly
    /// `CRITERION_SAMPLE_MS` (default 20 ms), and sampling stops early once
    /// `CRITERION_BUDGET_MS` (default 3000 ms) has been spent. When
    /// `CRITERION_COOLDOWN_MS` is set, the bencher idles that long first:
    /// on throttled shared machines (CPU bandwidth quotas, turbo decay) a
    /// benchmark's position in the run otherwise skews its numbers —
    /// whichever entry runs first inherits a fresh quota and measures
    /// faster. The cooldown lets every entry start equally recovered.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let cooldown = env_ms("CRITERION_COOLDOWN_MS", 0);
        if !cooldown.is_zero() {
            std::thread::sleep(cooldown);
        }
        let sample_target = env_ms("CRITERION_SAMPLE_MS", 20);
        let budget = env_ms("CRITERION_BUDGET_MS", 3_000);
        let started = Instant::now();

        // Warm-up probe: one call, also used to size batches.
        let t0 = Instant::now();
        black_box(f());
        let probe = t0.elapsed().max(Duration::from_nanos(1));

        let batch = (sample_target.as_nanos() / probe.as_nanos()).clamp(1, 1 << 24) as u64;
        self.samples_ns_per_iter.clear();
        for _ in 0..self.sample_size.max(2) {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let per_iter = t.elapsed().as_nanos() as f64 / batch as f64;
            self.samples_ns_per_iter.push(per_iter);
            if started.elapsed() > budget {
                break;
            }
        }
    }

    fn report(&self, id: &str) {
        let mut s = self.samples_ns_per_iter.clone();
        if s.is_empty() {
            println!("{id:<48} (no samples)");
            return;
        }
        s.sort_by(f64::total_cmp);
        let min = s[0];
        let median = s[s.len() / 2];
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        println!(
            "{id:<48} min {:>12}  median {:>12}  mean {:>12}  ({} samples)",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean),
            s.len()
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// A named set of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().repr);
        if should_run(&full) {
            let mut b = Bencher { sample_size: self.sample_size, ..Bencher::default() };
            f(&mut b);
            b.report(&full);
        }
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.repr);
        if should_run(&full) {
            let mut b = Bencher { sample_size: self.sample_size, ..Bencher::default() };
            f(&mut b, input);
            b.report(&full);
        }
        self
    }

    /// Ends the group (upstream-compatibility no-op).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    fn effective_sample_size(&self) -> usize {
        if self.default_sample_size == 0 {
            10
        } else {
            self.default_sample_size
        }
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.effective_sample_size();
        BenchmarkGroup { name: name.into(), sample_size, _criterion: self }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = id.into().repr;
        if should_run(&full) {
            let mut b = Bencher { sample_size: self.effective_sample_size(), ..Bencher::default() };
            f(&mut b);
            b.report(&full);
        }
        self
    }
}

/// Declares a function running a list of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $crate::init_from_args();
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(n: u64) -> u64 {
        let mut acc = 0u64;
        for i in 0..n {
            acc = acc.wrapping_add(black_box(i));
        }
        acc
    }

    #[test]
    fn bencher_collects_samples() {
        std::env::set_var("CRITERION_SAMPLE_MS", "1");
        std::env::set_var("CRITERION_BUDGET_MS", "50");
        let mut b = Bencher { sample_size: 5, ..Bencher::default() };
        b.iter(|| spin(100));
        assert!(!b.samples_ns_per_iter.is_empty());
        assert!(b.samples_ns_per_iter.iter().all(|&ns| ns > 0.0));
    }

    #[test]
    fn group_api_composes() {
        std::env::set_var("CRITERION_SAMPLE_MS", "1");
        std::env::set_var("CRITERION_BUDGET_MS", "20");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.bench_function("spin", |b| b.iter(|| spin(10)));
        group.bench_with_input(BenchmarkId::new("spin_n", 32), &32u64, |b, &n| b.iter(|| spin(n)));
        group.finish();
        c.bench_function("top_level", |b| b.iter(|| spin(5)));
    }

    #[test]
    fn id_rendering() {
        assert_eq!(BenchmarkId::new("width", 16).repr, "width/16");
        assert_eq!(BenchmarkId::from_parameter(8).repr, "8");
    }
}
