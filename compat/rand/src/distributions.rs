//! Value distributions: how raw bits become typed samples.

use crate::Rng;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample using `rng`.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution per type: uniform over the full integer range,
/// uniform over `[0, 1)` for floats, fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Standard;

impl Distribution<u64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<u16> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u16 {
        (rng.next_u64() >> 48) as u16
    }
}

impl Distribution<u8> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<i64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Distribution<i32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> i32 {
        rng.next_u32() as i32
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits -> uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}
