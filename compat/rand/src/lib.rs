//! Offline stand-in for the parts of the `rand` crate this workspace uses.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the same module layout and trait surface (`Rng`, `SeedableRng`,
//! `rngs::SmallRng`, `seq::SliceRandom`, `distributions::Standard`) backed by
//! a xoshiro256++ generator seeded through SplitMix64. Streams differ from
//! upstream `rand`, but every consumer in this workspace only relies on
//! determinism-per-seed and statistical uniformity, not on exact sequences.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// A source of randomness: the object-safe core every generator implements.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Convenience sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples a uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    fn gen_index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "gen_index bound must be nonzero");
        // Multiply-shift (Lemire) keeps the modulo bias below 2^-64 * bound.
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }

    /// Samples a `bool` that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of generators from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;

    /// Builds a generator from OS entropy. Without platform entropy sources
    /// in this offline stand-in, the seed is derived from the current time
    /// and the address-space layout; use [`SeedableRng::seed_from_u64`] for
    /// reproducible streams.
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E37_79B9_7F4A_7C15);
        let local = 0u8;
        Self::seed_from_u64(t ^ (std::ptr::addr_of!(local) as u64).rotate_left(32))
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be effectively independent");
    }

    #[test]
    fn f64_samples_are_in_unit_interval_and_spread() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn shuffle_produces_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..257).collect();
        v.shuffle(&mut rng);
        let mut seen = vec![false; 257];
        for &x in &v {
            assert!(!seen[x]);
            seen[x] = true;
        }
        assert_ne!(v, (0..257).collect::<Vec<_>>(), "identity shuffle is astronomically unlikely");
    }

    #[test]
    fn gen_index_respects_bound() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut hits = [0usize; 7];
        for _ in 0..7_000 {
            hits[rng.gen_index(7)] += 1;
        }
        for &h in &hits {
            assert!(h > 700, "uniformity: {hits:?}");
        }
    }

    #[test]
    fn bool_probability_is_honoured() {
        let mut rng = SmallRng::seed_from_u64(5);
        let trues = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&trues), "{trues}");
    }
}
