//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic generator (xoshiro256++).
///
/// Mirrors `rand::rngs::SmallRng`'s role: cheap per-draw cost and a
/// deterministic stream per seed. Not suitable for cryptography.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    fn next_raw(&mut self) -> u64 {
        // xoshiro256++ (Blackman & Vigna, 2018; public domain reference).
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expands the single word into four independent words;
        // this is the seeding procedure xoshiro's authors recommend.
        let mut x = state;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut s = [next(), next(), next(), next()];
        if s == [0; 4] {
            // The all-zero state is the one fixed point; nudge away from it.
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }
}

/// The default general-purpose generator; here an alias of [`SmallRng`].
pub type StdRng = SmallRng;
