//! Sequence-related randomness: shuffling and choosing from slices.

use crate::Rng;

/// Random operations on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates; every permutation is
    /// equally likely).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if the slice is empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_index(i + 1));
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_index(self.len())])
        }
    }
}
