//! Cross-crate integration: workloads stay functionally correct while the
//! endurance machinery re-maps them, and the fast simulator agrees with
//! cell-by-cell execution.

use nvpim::array::IdentityMap;
use nvpim::balance::CombinedMap;
use nvpim::core::sim::simulate_naive;
use nvpim::prelude::*;
use nvpim::workloads::dot_product::DotProduct;

/// Multiplication must produce correct products under *every* balancing
/// configuration — re-mapping may never corrupt computation (the §3.2
/// correctness requirement that makes PIM balancing hard in the first
/// place).
#[test]
fn multiplication_correct_under_every_config() {
    let dims = ArrayDims::new(192, 8);
    let pm = nvpim::workloads::parallel_mul::ParallelMul::new(dims, 8);
    let wl = pm.build();
    let a: Vec<u64> = (0..8).map(|l| (37 * l + 11) % 256).collect();
    let b: Vec<u64> = (0..8).map(|l| (53 * l + 5) % 256).collect();
    for config in BalanceConfig::all() {
        let mut map = CombinedMap::new(config, dims.rows(), dims.lanes(), 99);
        let mut array = PimArray::new(dims);
        // Run several iterations with software re-maps between them. Values
        // do not survive a software re-map (the paper assumes oracular
        // migration), so check correctness within each epoch's iteration.
        for epoch in 0..3 {
            array.execute(wl.trace(), &mut map, &mut pm.inputs(&a, &b));
            for lane in 0..8 {
                assert_eq!(
                    array.word(wl.result_rows(), lane, &map),
                    a[lane] * b[lane],
                    "{config} epoch {epoch} lane {lane}"
                );
            }
            map.advance_epoch();
        }
    }
}

/// Dot-product with transfers and reductions stays correct under hardware
/// re-mapping (the most dynamic configuration).
#[test]
fn dot_product_correct_under_hw_remapping() {
    let dims = ArrayDims::new(256, 8);
    let dp = DotProduct::new(dims, 8, 6);
    let wl = dp.build();
    let a: Vec<u64> = vec![13, 7, 0, 63, 21, 42, 9, 30];
    let b: Vec<u64> = vec![5, 11, 63, 1, 17, 2, 33, 8];
    let expect: u64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
    let mut map = CombinedMap::new("StxSt+Hw".parse().unwrap(), dims.rows(), dims.lanes(), 7);
    let mut array = PimArray::new(dims);
    for _ in 0..3 {
        array.execute(wl.trace(), &mut map, &mut dp.inputs(&a, &b));
        assert_eq!(array.word(wl.result_rows(), 0, &map), expect);
    }
}

/// The epoch-factorized simulator is bit-exact against executing the trace
/// cell by cell, across the whole configuration matrix.
#[test]
fn fast_simulator_is_bit_exact() {
    let dims = ArrayDims::new(128, 8);
    let wl = nvpim::workloads::parallel_mul::ParallelMul::new(dims, 4).build();
    let cfg = SimConfig::paper().with_iterations(9).with_schedule(RemapSchedule::every(4));
    let sim = EnduranceSimulator::new(cfg);
    for config in BalanceConfig::all() {
        let fast = sim.run(&wl, config);
        let naive = simulate_naive(&wl, config, cfg);
        assert_eq!(fast.wear.total_writes(), naive.total_writes(), "{config}");
        for row in 0..dims.rows() {
            for lane in 0..dims.lanes() {
                assert_eq!(
                    fast.wear.writes_at(row, lane),
                    naive.writes_at(row, lane),
                    "{config} at ({row},{lane})"
                );
            }
        }
    }
}

/// Balancing conserves total writes and never increases them; lifetime
/// improvements come purely from redistribution.
#[test]
fn balancing_redistributes_but_conserves() {
    let dims = ArrayDims::new(256, 16);
    let wl = DotProduct::new(dims, 16, 8).build();
    let sim = EnduranceSimulator::new(SimConfig::paper().with_iterations(300));
    let baseline = sim.run(&wl, BalanceConfig::baseline());
    let model = LifetimeModel::mtj();
    for config in BalanceConfig::all() {
        let run = sim.run(&wl, config);
        assert_eq!(run.wear.total_writes(), baseline.wear.total_writes(), "{config}");
        let improvement = model.improvement(&run, &baseline);
        assert!(improvement > 0.60, "{config}: pathological regression {improvement}");
    }
}

/// The full pipeline from device technology to lifetime: RRAM dies orders
/// of magnitude sooner than MTJ on the identical workload.
#[test]
fn technology_dominates_lifetime() {
    let dims = ArrayDims::new(256, 16);
    let wl = nvpim::workloads::convolution::Convolution::new(dims, 4, 3, 4).build();
    let sim = EnduranceSimulator::new(SimConfig::paper().with_iterations(100));
    let run = sim.run(&wl, "RaxRa".parse().unwrap());
    let mtj = LifetimeModel::for_technology(Technology::Mram).lifetime(&run);
    let rram = LifetimeModel::for_technology(Technology::Rram).lifetime(&run);
    assert!((mtj.seconds / rram.seconds - 1000.0).abs() < 1.0);
}

/// The binarized layer stays correct under the most dynamic configuration,
/// closing the loop between the extended circuit library (XNOR, popcount)
/// and the balancing machinery.
#[test]
fn bnn_layer_correct_under_remapping() {
    use nvpim::workloads::bnn_layer::BnnLayer;
    let dims = ArrayDims::new(512, 8);
    let layer = BnnLayer::new(dims, 32).with_threshold(16);
    let wl = layer.build();
    let activations: Vec<u64> = (0..8).map(|l| 0x89AB_CDEF ^ (l as u64 * 0x1111_1111)).collect();
    let weights: Vec<u64> = (0..8).map(|l| 0x1357_9BDF >> l).collect();
    for config in ["RaxRa+Hw", "BsxBs", "StxRa+Hw"] {
        let mut map = CombinedMap::new(config.parse().unwrap(), dims.rows(), dims.lanes(), 2024);
        map.advance_epoch();
        let mut array = PimArray::new(dims);
        array.execute(wl.trace(), &mut map, &mut layer.inputs(&activations, &weights));
        for lane in 0..8 {
            let mask = (1u64 << 32) - 1;
            assert_eq!(
                array.bit(wl.result_rows()[0], lane, &map),
                layer.reference(activations[lane] & mask, weights[lane] & mask),
                "{config} lane {lane}"
            );
        }
    }
}

/// Readout through the identity map equals readout through a static
/// combined map (sanity of the facade surface).
#[test]
fn identity_and_static_maps_agree() {
    let dims = ArrayDims::new(64, 2);
    let pm = nvpim::workloads::parallel_mul::ParallelMul::new(dims, 4);
    let wl = pm.build();
    let a = [9u64, 12];
    let b = [3u64, 5];

    let mut ident = PimArray::new(dims);
    ident.execute(wl.trace(), &mut IdentityMap, &mut pm.inputs(&a, &b));

    let mut static_map = CombinedMap::new(BalanceConfig::baseline(), 64, 2, 0);
    let mut array = PimArray::new(dims);
    array.execute(wl.trace(), &mut static_map, &mut pm.inputs(&a, &b));

    for lane in 0..2 {
        assert_eq!(
            ident.word(wl.result_rows(), lane, &IdentityMap),
            array.word(wl.result_rows(), lane, &static_map),
        );
    }
}
