//! §3.2 / Fig. 6 made concrete: classic NVM wear-leveling works for
//! standard memory but corrupts in-memory computation, while this crate's
//! PIM-aware strategies re-map coherently.
//!
//! The paper's example (Algorithm 1): `x = 5`, `y = 6`, `z = x & y`. For
//! standard memory, shifting `y` within its row is harmless — the CPU reads
//! both operands and computes in its ALU. For PIM, the same "balanced"
//! layout breaks the computation because the bitwise AND happens *in place*,
//! lane by lane, and the operands are no longer aligned.

use nvpim::array::{
    ArchStyle, ArrayDims, IdentityMap, LaneSet, PimArray, Step, Trace, WriteSource,
};
use nvpim::balance::{CombinedMap, StartGap};
use nvpim::logic::GateKind;

const X: u64 = 5;
const Y: u64 = 6;
const WIDTH: usize = 8;

/// Builds the Fig. 6 kernel with `y` placed at a lane offset: `x` occupies
/// lanes `0..8` of row 0, `y` occupies lanes `shift..shift+8` of row 1, and
/// the AND fires across lanes `0..8` writing row 2.
fn fig6_trace(shift: usize) -> Trace {
    let dims = ArrayDims::new(4, 16);
    let mut t = Trace::new(dims);
    let x_lanes = t.add_class(LaneSet::range(16, 0, WIDTH));
    let y_lanes = t.add_class(LaneSet::range(16, shift, shift + WIDTH));
    t.push(Step::Write { row: 0, class: x_lanes, source: WriteSource::Input(0) });
    t.push(Step::Write { row: 1, class: y_lanes, source: WriteSource::Input(1) });
    t.push(Step::Gate { kind: GateKind::And, ins: [0, 1], out: 2, class: x_lanes });
    t
}

/// Runs the kernel and reads `z` out of row 2, lanes 0..8 (LSB = lane 0).
fn run_fig6(shift: usize) -> u64 {
    let trace = fig6_trace(shift);
    let mut array = PimArray::new(trace.dims()).with_arch(ArchStyle::SenseAmp);
    // Bit k of x lives in lane k; bit k of y lives in lane shift + k.
    array.execute(&trace, &mut IdentityMap, &mut |lane, input| match input {
        0 => (X >> lane) & 1 == 1,
        _ => (Y >> (lane - shift)) & 1 == 1,
    });
    (0..WIDTH).fold(0, |acc, lane| acc | (u64::from(array.bit(2, lane, &IdentityMap)) << lane))
}

/// Aligned operands compute the paper's `z = 5 & 6 = 4`.
#[test]
fn aligned_operands_compute_correctly() {
    assert_eq!(run_fig6(0), X & Y);
}

/// The standard-memory "load-balanced" placement (Fig. 6b): shifting `y`
/// within its row makes the in-memory AND read unrelated cells — the
/// computation silently produces the wrong answer.
#[test]
fn word_level_remapping_corrupts_pim() {
    let z = run_fig6(2);
    assert_ne!(z, X & Y, "misaligned operands must corrupt z, got {z}");
    // Specifically: lane k now ANDs x's bit k with y's bit (k − 2), which
    // reads as garbage (or an unwritten cell) for the low lanes.
    assert_eq!(z, X & (Y << 2) & 0xFF & !0b11, "{z:#b}");
}

/// Start-Gap's gap movement relocates one line at a time. If the array
/// cannot afford the per-move data migration (the paper's point: PIM data
/// access granularity is the whole array), translation and contents drift
/// apart and reads return stale data.
#[test]
fn start_gap_without_migration_serves_stale_rows() {
    let dims = ArrayDims::new(5, 8); // 4 logical rows + 1 gap row
    let mut sg = StartGap::new(4, 1);
    let mut array = PimArray::new(dims).with_arch(ArchStyle::SenseAmp);

    // Write marker values into logical rows 0..4 through the translation.
    let write_row = |array: &mut PimArray, logical: usize, value: bool| {
        let mut t = Trace::new(dims);
        let all = t.add_class(LaneSet::full(8));
        t.push(Step::Write {
            row: sg.translate(logical),
            class: all,
            source: WriteSource::Const(value),
        });
        array.execute(&t, &mut IdentityMap, &mut |_, _| unreachable!());
    };
    for logical in 0..4 {
        write_row(&mut array, logical, logical % 2 == 1);
    }

    // The gap moves (one write's worth of traffic) but nobody migrates the
    // displaced row's contents.
    sg.record_write(0);

    // Logical row 3 stored `true`, but its new physical home (the old gap
    // row) was never written and still reads `false`.
    let stale = array.bit(sg.translate(3), 0, &IdentityMap);
    assert_ne!(stale, 3 % 2 == 1, "row 3's data did not move with the translation");
}

/// The contrast: this crate's whole-array strategies (here `Ra × Ra`)
/// re-map *every* operand through one consistent translation, so the same
/// kernel keeps computing 5 & 6 = 4 in any epoch.
#[test]
fn coherent_remapping_preserves_the_kernel() {
    let trace = fig6_trace(0);
    for epoch in 0..4 {
        let mut map = CombinedMap::new("RaxRa".parse().unwrap(), 4, 16, 1234);
        for _ in 0..epoch {
            map.advance_epoch();
        }
        let mut array = PimArray::new(trace.dims()).with_arch(ArchStyle::SenseAmp);
        array.execute(&trace, &mut map, &mut |lane, input| match input {
            0 => (X >> lane) & 1 == 1,
            _ => (Y >> lane) & 1 == 1,
        });
        let z =
            (0..WIDTH).fold(0u64, |acc, lane| acc | (u64::from(array.bit(2, lane, &map)) << lane));
        assert_eq!(z, X & Y, "epoch {epoch}");
    }
}

/// Start-Gap remains an excellent *standard memory* leveler: the same
/// translation machinery flattens a skewed write stream (its design goal),
/// which is why the paper treats it as the state of the art to adapt from.
#[test]
fn start_gap_levels_standard_memory() {
    let n = 32;
    let mut sg = StartGap::new(n, 4);
    let mut wear = vec![0u64; n + 1];
    for i in 0..400_000u64 {
        // 80% of traffic to two hot lines.
        let logical = match i % 5 {
            0 => (i as usize / 5) % n,
            _ => (i as usize % 2) * 7,
        };
        wear[sg.translate(logical)] += 1;
        sg.record_write(logical);
    }
    let max = *wear.iter().max().unwrap() as f64;
    let mean = wear.iter().sum::<u64>() as f64 / wear.len() as f64;
    assert!(max / mean < 1.4, "max/mean {}", max / mean);
}
