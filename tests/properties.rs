//! Cross-crate property-based tests on the endurance pipeline's invariants.

use nvpim::balance::{CombinedMap, Strategy as Balance};
use nvpim::prelude::{
    ArrayDims, BalanceConfig, EnduranceSimulator, LifetimeModel, PimArray, RemapSchedule, SimConfig,
};
use nvpim::workloads::parallel_mul::ParallelMul;
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = BalanceConfig> {
    let strat = prop_oneof![Just(Balance::Static), Just(Balance::Random), Just(Balance::ByteShift)];
    (strat.clone(), strat, any::<bool>())
        .prop_map(|(row, col, hw)| BalanceConfig::new(row, col, hw))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the configuration, seed, and schedule, total writes are an
    /// invariant of (workload × iterations × architecture).
    #[test]
    fn total_writes_invariant(config in arb_config(), seed: u64, period in 1u64..40, iters in 1u64..60) {
        let dims = ArrayDims::new(96, 8);
        let wl = ParallelMul::new(dims, 4).build();
        let cfg = SimConfig::paper()
            .with_iterations(iters)
            .with_seed(seed)
            .with_schedule(RemapSchedule::every(period));
        let run = EnduranceSimulator::new(cfg).run(&wl, config);
        let per_iter = wl.trace().counts(run.arch).cell_writes;
        prop_assert_eq!(run.wear.total_writes(), per_iter * iters);
    }

    /// Address maps remain injective over (row, lane) space at every point
    /// of a simulated run — two logical cells never collide physically.
    #[test]
    fn combined_map_stays_injective(config in arb_config(), seed: u64, epochs in 1usize..6) {
        use nvpim::array::AddressMap;
        let rows = 48usize;
        let lanes = 16usize;
        let mut map = CombinedMap::new(config, rows, lanes, seed);
        for e in 0..epochs {
            // Exercise the dynamic path.
            for i in 0..100 {
                let _ = map.gate_output_row((i * 13 + e) % map.logical_rows(), i % 2 == 0);
            }
            let mut seen_rows = vec![false; rows];
            for l in 0..map.logical_rows() {
                let p = map.lookup_row(l);
                prop_assert!(p < rows);
                prop_assert!(!seen_rows[p], "row collision");
                seen_rows[p] = true;
            }
            let mut seen_lanes = vec![false; lanes];
            for l in 0..lanes {
                let p = map.lookup_lane(l);
                prop_assert!(p < lanes);
                prop_assert!(!seen_lanes[p], "lane collision");
                seen_lanes[p] = true;
            }
            map.advance_epoch();
        }
    }

    /// Functional correctness of the multiply workload is preserved under
    /// arbitrary configurations and inputs (within one epoch).
    #[test]
    fn multiply_correct_under_arbitrary_config(
        config in arb_config(),
        seed: u64,
        a in prop::collection::vec(0u64..256, 4),
        b in prop::collection::vec(0u64..256, 4),
    ) {
        let dims = ArrayDims::new(224, 4);
        let pm = ParallelMul::new(dims, 8);
        let wl = pm.build();
        let mut map = CombinedMap::new(config, dims.rows(), dims.lanes(), seed);
        map.advance_epoch(); // start from a shuffled epoch, not identity
        let mut array = PimArray::new(dims);
        array.execute(wl.trace(), &mut map, &mut pm.inputs(&a, &b));
        for lane in 0..4 {
            prop_assert_eq!(array.word(wl.result_rows(), lane, &map), a[lane] * b[lane]);
        }
    }

    /// Eq. 4 monotonicity: more endurance or a flatter distribution never
    /// shortens lifetime.
    #[test]
    fn lifetime_monotone_in_endurance(e1 in 1u64..1_000_000, e2 in 1u64..1_000_000) {
        let dims = ArrayDims::new(96, 8);
        let wl = ParallelMul::new(dims, 4).build();
        let run = EnduranceSimulator::new(SimConfig::paper().with_iterations(10)).run(&wl, BalanceConfig::baseline());
        let (lo, hi) = (e1.min(e2), e1.max(e2));
        let l_lo = LifetimeModel::new(lo, 3.0).lifetime(&run);
        let l_hi = LifetimeModel::new(hi, 3.0).lifetime(&run);
        prop_assert!(l_hi.iterations >= l_lo.iterations);
        prop_assert!(l_hi.seconds >= l_lo.seconds);
    }

    /// The usable-fraction curve (Fig. 11b) is monotone in both arguments.
    #[test]
    fn usable_fraction_monotone(f1 in 0.0f64..1.0, f2 in 0.0f64..1.0, lanes in 1usize..2048) {
        use nvpim::core::failure::usable_fraction;
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        prop_assert!(usable_fraction(lo, lanes) >= usable_fraction(hi, lanes));
        if lanes > 1 && hi > 0.0 {
            prop_assert!(usable_fraction(hi, lanes) <= usable_fraction(hi, lanes - 1));
        }
    }
}
