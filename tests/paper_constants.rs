//! End-to-end checks of every headline number the paper states in prose,
//! computed through the public facade API.

use nvpim::balance::access_aware;
use nvpim::core::{baseline, limits};
use nvpim::logic::counts;
use nvpim::prelude::*;

#[test]
fn section_1_write_amplification() {
    // "an in-memory multiplication requires over 150× more write operations
    // than it would require in a conventional architecture"
    assert!(baseline::write_amplification(32) > 150.0);
}

#[test]
fn section_3_1_operation_counts() {
    // "the same multiplication requires 9,824 in-memory gates, which incurs
    // 9,824 cell writes and 19,616 cell reads"
    assert_eq!(counts::mul_gate_writes(32), 9_824);
    assert_eq!(counts::mul_cell_reads(32), 19_616);
    // "this incurs 64 cell reads and 64 cell writes" (conventional)
    assert_eq!(baseline::conventional_multiply(32).reads, 64);
    assert_eq!(baseline::conventional_multiply(32).writes, 64);
    // "an average of 0.0625 reads and writes per cell"
    let (r, w) = baseline::per_cell_averages(baseline::conventional_multiply(32), 1024);
    assert!((r - 0.0625).abs() < 1e-12 && (w - 0.0625).abs() < 1e-12);
    // "19.16 reads/cell and 9.59 writes/cell"
    let (r, w) = baseline::per_cell_averages(baseline::pim_multiply(32), 1024);
    assert!((r - 19.16).abs() < 0.01 && (w - 9.59).abs() < 0.01);
}

#[test]
fn equation_1_maximum_multiplications() {
    // 1024² × 10^12 / 9824 = 1.07 × 10^14
    let ops = limits::max_operations(1024, 1024, 10u64.pow(12), 9_824);
    assert!((ops / 1.07e14 - 1.0).abs() < 0.005);
}

#[test]
fn equation_2_time_to_failure() {
    // 3,072,000 s = 35.56 days; RRAM at 1e8: just over 5 minutes.
    let mtj = limits::seconds_to_total_failure(1024, 1024, 10u64.pow(12), 3.0);
    assert!((mtj - 3_072_000.0).abs() < 1.0);
    assert!((limits::days_to_total_failure(1024, 1024, 10u64.pow(12), 3.0) - 35.56).abs() < 0.01);
    let rram = limits::seconds_to_total_failure(1024, 1024, 100_000_000, 3.0);
    assert!(rram > 300.0 && rram < 330.0);
}

#[test]
fn section_2_2_gate_decompositions() {
    // "a full-adder can be implemented with 9 NAND gates" (Fig. 2)
    let mut b = CircuitBuilder::new();
    let ins = b.inputs(3);
    let _ = circuits::full_adder(&mut b, ins[0], ins[1], ins[2]);
    assert_eq!(b.build().stats().total_gates(), 9);
    // "b-bit addition ... with b−1 full-adds and 1 half-add"
    assert_eq!(counts::add_gate_writes(32), 31 * 9 + 5);
    // "b² − 2b full-adds, b half-adds, and b² AND gates" (DADDA)
    assert_eq!(counts::dadda_full_adders(32), 960);
    assert_eq!(counts::dadda_half_adders(32), 32);
    assert_eq!(counts::dadda_and_gates(32), 1_024);
}

#[test]
fn section_3_2_shuffling_overheads() {
    // "For 32-bit numbers, this equates to an extra 2.17%." (multiplication)
    assert!((100.0 * access_aware::mul_overhead(32) - 2.17).abs() < 0.005);
    // "The relative overhead in this case becomes (3b+1)/(5b−3) ... 61.78%."
    assert!((100.0 * access_aware::add_overhead(32) - 61.78).abs() < 0.005);
    // "a multiplication requires 6b²−8b gates in total"
    assert_eq!(counts::mul_gates_ideal(32), 6 * 32 * 32 - 8 * 32);
    // "shuffling requires 2×b COPY gates ... In total, we need 4×b COPY"
    assert_eq!(access_aware::mul_shuffle_gates(32), 128);
    assert_eq!(access_aware::add_shuffle_gates(32), 97);
}

#[test]
fn section_4_dot_product_costing() {
    // "A single data transfer takes 2 sequential operations (read/write)" —
    // check directly on a trace.
    use nvpim::array::{ArchStyle, Step, Trace};
    let dims = ArrayDims::new(8, 4);
    let mut t = Trace::new(dims);
    let hi = t.add_class(LaneSet::range(4, 2, 4));
    let lo = t.add_class(LaneSet::range(4, 0, 2));
    t.push(Step::Transfer { src_row: 0, dst_row: 1, src_class: hi, dst_class: lo });
    assert_eq!(t.counts(ArchStyle::PresetOutput).sequential_steps, 2);
    // "A multiplication takes over 20,000 sequential operations" (preset).
    let wl = ParallelMul::new(ArrayDims::new(1024, 4), 32).without_readout().build();
    let steps = wl.steps_per_iteration(ArchStyle::PresetOutput);
    assert!(steps > 19_600, "steps {steps}");
}

#[test]
fn section_2_1_device_survey() {
    // MTJs: up to 10^12; RRAM: 10^8–10^9; PCM: 10^6–10^9.
    assert_eq!(Technology::Mram.typical_endurance(), 10u64.pow(12));
    assert!(Technology::Rram.typical_endurance() <= 10u64.pow(9));
    assert!(Technology::Rram.pessimistic_endurance() >= 10u64.pow(8));
    assert!(Technology::Pcm.pessimistic_endurance() >= 10u64.pow(6));
    // 3 ns per gate (Eq. 2's switching time).
    assert!((DeviceParams::default().op_latency_ns - 3.0).abs() < f64::EPSILON);
}
