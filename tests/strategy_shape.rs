//! The qualitative findings of the paper's evaluation (§5), asserted as
//! integration tests: which strategy helps which workload, and why.

use nvpim::prelude::*;
use nvpim::workloads::convolution::Convolution;
use nvpim::workloads::dot_product::DotProduct;
use nvpim::workloads::parallel_mul::ParallelMul;

fn improvements(wl: &nvpim::workloads::Workload, iterations: u64) -> Vec<(BalanceConfig, f64)> {
    let sim = EnduranceSimulator::new(SimConfig::paper().with_iterations(iterations));
    let model = LifetimeModel::mtj();
    let baseline = sim.run(wl, BalanceConfig::baseline());
    BalanceConfig::all()
        .into_iter()
        .map(|c| (c, model.improvement(&sim.run(wl, c), &baseline)))
        .collect()
}

fn lookup(data: &[(BalanceConfig, f64)], name: &str) -> f64 {
    let config: BalanceConfig = name.parse().expect("valid config");
    data.iter().find(|(c, _)| *c == config).expect("present").1
}

/// "Multiplication has no imbalance between lanes (columns), so it only
/// benefits from within-lane (row) balancing strategies. Specifically,
/// St × Ra and St × Bs do not provide any benefit."
#[test]
fn multiplication_ignores_column_strategies() {
    let wl = ParallelMul::new(ArrayDims::new(512, 32), 16).build();
    let data = improvements(&wl, 1500);
    assert!((lookup(&data, "StxRa") - 1.0).abs() < 1e-9);
    assert!((lookup(&data, "StxBs") - 1.0).abs() < 1e-9);
    assert!(lookup(&data, "RaxSt") > 1.3, "row shuffling must help");
    assert!(lookup(&data, "RaxSt+Hw") > 1.0);
}

/// "Since convolution is write-heavy in every fourth column, byte shifting
/// (Bs) the columns does not help (St × Bs provides no benefit): shifting
/// columns by an integer number of bytes re-maps write-heavy columns to
/// other write-heavy columns." Random column shuffling, in contrast, does
/// help.
#[test]
fn convolution_byte_shift_columns_useless_random_helps() {
    let wl = Convolution::new(ArrayDims::new(512, 64), 4, 3, 8).build();
    let data = improvements(&wl, 1500);
    let st_bs = lookup(&data, "StxBs");
    let st_ra = lookup(&data, "StxRa");
    assert!((st_bs - 1.0).abs() < 0.02, "byte-shifted columns land on other hot columns: {st_bs}");
    assert!(st_ra > st_bs + 0.02, "random columns must beat byte-shift: {st_ra} vs {st_bs}");
}

/// "Dot-product, which has a large imbalance in both rows and columns,
/// shows significant improvement from load-balancing in both dimensions."
#[test]
fn dot_product_benefits_in_both_dimensions() {
    let wl = DotProduct::new(ArrayDims::new(512, 64), 64, 16).build();
    let data = improvements(&wl, 1500);
    assert!(lookup(&data, "RaxSt") > 1.1, "rows help");
    assert!(lookup(&data, "StxRa") > 1.1, "columns help");
    assert!(lookup(&data, "StxBs") > 1.05, "byte-shifted columns help here");
    let both = lookup(&data, "RaxRa");
    assert!(both >= lookup(&data, "RaxSt") && both >= lookup(&data, "StxRa") - 0.05);
}

/// Hardware re-mapping alone improves every benchmark (it levels the
/// within-lane workspace without any recompilation).
#[test]
fn hardware_remapping_always_helps_alone() {
    for wl in [
        ParallelMul::new(ArrayDims::new(512, 16), 8).build(),
        Convolution::new(ArrayDims::new(512, 16), 4, 3, 4).build(),
        DotProduct::new(ArrayDims::new(512, 16), 16, 8).build(),
    ] {
        let data = improvements(&wl, 1200);
        let hw = lookup(&data, "StxSt+Hw");
        assert!(hw > 1.02, "{}: Hw alone gives {hw}", wl.name());
    }
}

/// Table 3's utilization ordering: multiplication (100%) > convolution >
/// dot-product (~65%).
#[test]
fn lane_utilization_ordering() {
    let mul = ParallelMul::paper().build().lane_utilization(ArchStyle::PresetOutput);
    let conv = Convolution::paper().build().lane_utilization(ArchStyle::PresetOutput);
    let dot = DotProduct::paper().build().lane_utilization(ArchStyle::PresetOutput);
    assert!((mul - 1.0).abs() < 1e-9, "mul {mul}");
    assert!(conv < mul && conv > dot, "conv {conv} between mul {mul} and dot {dot}");
    assert!(dot > 0.5 && dot < 0.85, "dot {dot} near the paper's 65.2%");
}

/// §5's re-compilation finding: more frequent re-mapping shows diminishing
/// returns.
#[test]
fn remap_frequency_diminishing_returns() {
    use nvpim::core::sweep;
    let wl = ParallelMul::new(ArrayDims::new(512, 16), 8).build();
    let points = sweep::remap_frequency_sweep(
        &wl,
        "RaxSt".parse().unwrap(),
        SimConfig::paper().with_iterations(8_000),
        LifetimeModel::mtj(),
        &[1000, 100, 10],
    );
    let gain_coarse = points[1].lifetime_iterations / points[0].lifetime_iterations;
    let gain_fine = points[2].lifetime_iterations / points[1].lifetime_iterations;
    assert!(gain_coarse > 1.0);
    assert!(gain_fine < gain_coarse, "returns must diminish: {gain_coarse} then {gain_fine}");
}
